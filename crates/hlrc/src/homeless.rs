//! Homeless lazy release consistency — the original TreadMarks protocol
//! that the paper's authors *modified into* home-based HLRC.
//!
//! The paper's §2 motivates home-based DSM by contrast with this
//! protocol: without homes,
//!
//! * every writer must **retain** the diffs of every interval (they are
//!   the only record of its modifications), so memory for coherence
//!   state grows until garbage-collected — the home-based protocol
//!   discards a diff as soon as the home acks it;
//! * bringing a copy up to date needs diff requests to potentially
//!   **many** concurrent writers, not one round trip to a home;
//! * write notices must carry enough ordering information to apply
//!   those diffs in happens-before order.
//!
//! This implementation is intentionally a faithful-but-lean homeless
//! LRC: eager diffing at interval end (TreadMarks' lazy diffing is an
//! optimization of the same protocol), no garbage collection (the paper
//! notes home-based needs none; here the archive growth is exactly the
//! cost we want to measure), and full-page seeding from the page's
//! initial owner. It exists for the home-based-vs-homeless comparison
//! bench and shares the substrate (`simnet`, `pagemem`) with HLRC.

use std::collections::HashMap;

use pagemem::{
    Access, BufferPool, ByteReader, ByteWriter, CodecError, Decode, Encode, Fault, IntervalId,
    PageDiff, PageFrame, PageId, PageState, SharedBytes, Twin, VClock,
};
use simnet::{CoherenceProtocol, Envelope, NodeCtx, NodeId, TraceKind, WireSized};

use crate::config::DsmConfig;
use crate::msg::WriteNotice;
use crate::sync::{BarrierMgr, LockTable, PendingAcquire};

/// Messages of the homeless protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum HMsg {
    /// Fetch a full (possibly stale) copy of `page` from its initial
    /// owner, together with the vector timestamp it reflects.
    CopyRequest {
        /// Requested page.
        page: PageId,
    },
    /// The owner's copy and the intervals it reflects.
    CopyReply {
        /// The page.
        page: PageId,
        /// Full contents (refcounted: cloning the message shares them).
        data: SharedBytes,
        /// Which writer intervals `data` already includes.
        applied: VClock,
    },
    /// Ask a writer for its retained diffs of `page` for the given
    /// interval sequence numbers.
    DiffRequest {
        /// The page.
        page: PageId,
        /// Wanted interval sequence numbers (the writer's numbering).
        seqs: Vec<u32>,
    },
    /// The retained diffs.
    DiffReply {
        /// The page.
        page: PageId,
        /// (interval, diff) pairs, in the writer's interval order.
        diffs: Vec<(IntervalId, PageDiff)>,
    },
    /// Lock request/grant/release and barrier messages, as in HLRC.
    LockRequest {
        /// The lock.
        lock: u32,
        /// Acquirer clock.
        vc: VClock,
    },
    /// Lock grant with piggybacked notices.
    LockGrant {
        /// The lock.
        lock: u32,
        /// Lock timestamp.
        vc: VClock,
        /// Notices the acquirer lacks.
        notices: Vec<WriteNotice>,
    },
    /// Lock release carrying fresh notices.
    LockRelease {
        /// The lock.
        lock: u32,
        /// Releaser clock.
        vc: VClock,
        /// Fresh notices.
        notices: Vec<WriteNotice>,
    },
    /// Barrier arrival.
    BarrierArrive {
        /// Episode.
        epoch: u32,
        /// Clock.
        vc: VClock,
        /// Fresh notices.
        notices: Vec<WriteNotice>,
    },
    /// Barrier release.
    BarrierRelease {
        /// Episode.
        epoch: u32,
        /// Merged clock.
        vc: VClock,
        /// Merged notices.
        notices: Vec<WriteNotice>,
    },
}

fn put_notices(w: &mut ByteWriter, notices: &[WriteNotice]) {
    w.put_u32(notices.len() as u32);
    for n in notices {
        n.encode(w);
    }
}

fn get_notices(r: &mut ByteReader<'_>) -> Result<Vec<WriteNotice>, CodecError> {
    let n = r.get_u32()? as usize;
    (0..n).map(|_| WriteNotice::decode(r)).collect()
}

impl Encode for HMsg {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            HMsg::CopyRequest { page } => {
                w.put_u8(0);
                w.put_u32(*page);
            }
            HMsg::CopyReply {
                page,
                data,
                applied,
            } => {
                w.put_u8(1);
                w.put_u32(*page);
                w.put_bytes(data);
                applied.encode(w);
            }
            HMsg::DiffRequest { page, seqs } => {
                w.put_u8(2);
                w.put_u32(*page);
                w.put_u32(seqs.len() as u32);
                for s in seqs {
                    w.put_u32(*s);
                }
            }
            HMsg::DiffReply { page, diffs } => {
                w.put_u8(3);
                w.put_u32(*page);
                w.put_u32(diffs.len() as u32);
                for (iv, d) in diffs {
                    iv.encode(w);
                    d.encode(w);
                }
            }
            HMsg::LockRequest { lock, vc } => {
                w.put_u8(4);
                w.put_u32(*lock);
                vc.encode(w);
            }
            HMsg::LockGrant { lock, vc, notices } => {
                w.put_u8(5);
                w.put_u32(*lock);
                vc.encode(w);
                put_notices(w, notices);
            }
            HMsg::LockRelease { lock, vc, notices } => {
                w.put_u8(6);
                w.put_u32(*lock);
                vc.encode(w);
                put_notices(w, notices);
            }
            HMsg::BarrierArrive { epoch, vc, notices } => {
                w.put_u8(7);
                w.put_u32(*epoch);
                vc.encode(w);
                put_notices(w, notices);
            }
            HMsg::BarrierRelease { epoch, vc, notices } => {
                w.put_u8(8);
                w.put_u32(*epoch);
                vc.encode(w);
                put_notices(w, notices);
            }
        }
    }

    /// Direct arithmetic mirror of `encode` — `wire_size` runs on every
    /// send and receive, so sizing must not serialize.
    fn encoded_size(&self) -> usize {
        fn notices(n: &[WriteNotice]) -> usize {
            4 + 12 * n.len()
        }
        match self {
            HMsg::CopyRequest { .. } => 1 + 4,
            HMsg::CopyReply { data, applied, .. } => {
                1 + 4 + 4 + data.len() + applied.encoded_size()
            }
            HMsg::DiffRequest { seqs, .. } => 1 + 4 + 4 + 4 * seqs.len(),
            HMsg::DiffReply { diffs, .. } => {
                1 + 4
                    + 4
                    + diffs
                        .iter()
                        .map(|(_, d)| 8 + d.encoded_size())
                        .sum::<usize>()
            }
            HMsg::LockRequest { vc, .. } => 1 + 4 + vc.encoded_size(),
            HMsg::LockGrant { vc, notices: n, .. }
            | HMsg::LockRelease { vc, notices: n, .. }
            | HMsg::BarrierArrive { vc, notices: n, .. }
            | HMsg::BarrierRelease { vc, notices: n, .. } => 1 + 4 + vc.encoded_size() + notices(n),
        }
    }
}

impl Decode for HMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => HMsg::CopyRequest { page: r.get_u32()? },
            1 => HMsg::CopyReply {
                page: r.get_u32()?,
                data: r.get_bytes()?.into(),
                applied: VClock::decode(r)?,
            },
            2 => {
                let page = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let seqs = (0..n).map(|_| r.get_u32()).collect::<Result<_, _>>()?;
                HMsg::DiffRequest { page, seqs }
            }
            3 => {
                let page = r.get_u32()?;
                let n = r.get_u32()? as usize;
                let mut diffs = Vec::with_capacity(n);
                for _ in 0..n {
                    diffs.push((IntervalId::decode(r)?, PageDiff::decode(r)?));
                }
                HMsg::DiffReply { page, diffs }
            }
            4 => HMsg::LockRequest {
                lock: r.get_u32()?,
                vc: VClock::decode(r)?,
            },
            5 => HMsg::LockGrant {
                lock: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: get_notices(r)?,
            },
            6 => HMsg::LockRelease {
                lock: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: get_notices(r)?,
            },
            7 => HMsg::BarrierArrive {
                epoch: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: get_notices(r)?,
            },
            8 => HMsg::BarrierRelease {
                epoch: r.get_u32()?,
                vc: VClock::decode(r)?,
                notices: get_notices(r)?,
            },
            t => {
                return Err(CodecError::BadTag {
                    context: "HMsg",
                    tag: t,
                })
            }
        })
    }
}

impl WireSized for HMsg {
    fn wire_size(&self) -> usize {
        crate::msg::HEADER_BYTES + self.encoded_size()
    }

    fn encoded_len(&self) -> Option<usize> {
        Some(self.encoded_size())
    }

    fn header_len(&self) -> usize {
        crate::msg::HEADER_BYTES
    }

    fn msg_label(&self) -> &'static str {
        match self {
            HMsg::CopyRequest { .. } => "CopyRequest",
            HMsg::CopyReply { .. } => "CopyReply",
            HMsg::DiffRequest { .. } => "DiffRequest",
            HMsg::DiffReply { .. } => "DiffReply",
            HMsg::LockRequest { .. } => "LockRequest",
            HMsg::LockGrant { .. } => "LockGrant",
            HMsg::LockRelease { .. } => "LockRelease",
            HMsg::BarrierArrive { .. } => "BarrierArrive",
            HMsg::BarrierRelease { .. } => "BarrierRelease",
        }
    }
}

struct HPage {
    /// Initial owner (serves full seed copies); pages are distributed
    /// exactly like HLRC homes so comparisons are apples-to-apples.
    owner: NodeId,
    state: PageState,
    frame: Option<PageFrame>,
    twin: Option<Twin>,
    /// Writer intervals already reflected in `frame`.
    applied: VClock,
    /// All write notices known for this page, in learn order
    /// (happens-before consistent).
    notices: Vec<WriteNotice>,
    dirty: bool,
}

/// A homeless-LRC DSM node.
pub struct HomelessNode {
    /// The node's machine.
    pub ctx: NodeCtx<HMsg>,
    cfg: DsmConfig,
    pages: Vec<HPage>,
    vc: VClock,
    next_interval: u32,
    history: Vec<WriteNotice>,
    last_barrier_vc: VClock,
    locks: LockTable,
    barrier_mgr: Option<BarrierMgr>,
    lock_grant_vcs: HashMap<u32, VClock>,
    barrier_epoch: u32,
    /// The retained diff archive: (page, own interval seq) → diff.
    /// This is the memory the paper says home-based DSM does not need.
    archive: HashMap<(PageId, u32), PageDiff>,
    /// Bytes currently held in the archive (reported by the bench).
    pub archive_bytes: usize,
    /// Free list recycling twin frames and seeded copies. Archive diffs
    /// never return to it (they are retained forever — the protocol's
    /// defining cost), so only page-sized frames circulate.
    pool: BufferPool,
}

impl HomelessNode {
    /// Build a homeless node over the same configuration type as HLRC.
    pub fn new(ctx: NodeCtx<HMsg>, cfg: DsmConfig) -> HomelessNode {
        let me = ctx.id();
        let n = cfg.n_nodes;
        let page_size = cfg.layout.page_size();
        let pages = (0..cfg.n_pages)
            .map(|p| {
                let owner = cfg.home_of(p);
                HPage {
                    owner,
                    state: if owner == me {
                        PageState::ReadOnly
                    } else {
                        PageState::Invalid
                    },
                    frame: (owner == me).then(|| PageFrame::zeroed(page_size)),
                    twin: None,
                    applied: VClock::new(n),
                    notices: Vec::new(),
                    dirty: false,
                }
            })
            .collect();
        HomelessNode {
            cfg,
            pages,
            vc: VClock::new(n),
            next_interval: 0,
            history: Vec::new(),
            last_barrier_vc: VClock::new(n),
            locks: LockTable::new(n),
            barrier_mgr: (me == 0).then(|| BarrierMgr::new(n)),
            lock_grant_vcs: HashMap::new(),
            barrier_epoch: 0,
            archive: HashMap::new(),
            archive_bytes: 0,
            pool: BufferPool::new(page_size),
            ctx,
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.ctx.id()
    }

    fn locate(&self, addr: usize) -> (PageId, usize) {
        let l = self.cfg.layout;
        (l.page_of(addr), l.offset_of(addr))
    }

    /// Read a u64 from the shared space.
    pub fn read_u64(&mut self, addr: usize) -> u64 {
        let (p, off) = self.locate(addr);
        self.ensure_access(p, Access::Read);
        self.pages[p as usize]
            .frame
            .as_ref()
            .expect("frame after ensure")
            .read_u64(off)
    }

    /// Write a u64 to the shared space.
    pub fn write_u64(&mut self, addr: usize, v: u64) {
        let (p, off) = self.locate(addr);
        self.ensure_access(p, Access::Write);
        self.pages[p as usize]
            .frame
            .as_mut()
            .expect("frame after ensure")
            .write_u64(off, v);
    }

    fn ensure_access(&mut self, page: PageId, access: Access) {
        let state = self.pages[page as usize].state;
        match state.fault_for(access) {
            None => {}
            Some(fault) => {
                let trap = self.ctx.cost.cpu.fault_trap;
                self.ctx.charge_overhead(trap);
                match fault {
                    Fault::ReadMiss => {
                        self.ctx.stats.read_faults += 1;
                        self.ctx.trace(TraceKind::ReadFault { page });
                    }
                    _ => {
                        self.ctx.stats.write_faults += 1;
                        self.ctx.trace(TraceKind::WriteFault { page });
                    }
                }
                if matches!(fault, Fault::ReadMiss | Fault::WriteMiss) {
                    self.validate_page(page);
                }
                if access == Access::Write {
                    let page_size = self.cfg.layout.page_size();
                    self.ctx.charge_copy(page_size);
                    self.ctx.stats.twins_created += 1;
                    let e = &mut self.pages[page as usize];
                    e.twin = Some(Twin::of_with(
                        e.frame.as_ref().expect("frame"),
                        &mut self.pool,
                    ));
                    e.dirty = true;
                    e.state = PageState::Writable;
                }
            }
        }
    }

    /// Make the local copy of `page` current: seed a full copy from the
    /// owner if none exists, then pull every missing writer's diffs —
    /// the multi-round-trip update path that home-based DSM replaces
    /// with a single fetch.
    fn validate_page(&mut self, page: PageId) {
        self.ctx.stats.page_fetches += 1;
        let me = self.me();
        let owner = self.pages[page as usize].owner;
        let asked_at = self.ctx.now();
        if self.pages[page as usize].frame.is_none() {
            let owner = self.pages[page as usize].owner;
            if owner == me {
                unreachable!("owner always has a frame");
            }
            self.ctx
                .send(owner, HMsg::CopyRequest { page })
                .expect("send copy request");
            let env = self.wait_for(|m| matches!(m, HMsg::CopyReply { page: p, .. } if *p == page));
            if let HMsg::CopyReply { data, applied, .. } = env.payload {
                self.ctx.charge_copy(data.len());
                let frame = self.pool.frame_from_bytes(&data);
                let e = &mut self.pages[page as usize];
                e.frame = Some(frame);
                e.applied = applied;
            }
        }
        // Collect unapplied intervals per writer, in learn order.
        let mut per_writer: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut order: Vec<IntervalId> = Vec::new();
        {
            let e = &self.pages[page as usize];
            for n in &e.notices {
                if e.applied.covers(n.interval) || n.interval.node == me as u32 {
                    continue;
                }
                order.push(n.interval);
                per_writer
                    .entry(n.interval.node)
                    .or_default()
                    .push(n.interval.seq);
            }
        }
        let n_requests = per_writer.len();
        // Request in writer order: the iteration feeds sends, so it
        // must not inherit HashMap iteration order.
        let mut per_writer: Vec<_> = per_writer.into_iter().collect();
        per_writer.sort_unstable_by_key(|(writer, _)| *writer);
        for (writer, seqs) in per_writer {
            self.ctx
                .send(writer as usize, HMsg::DiffRequest { page, seqs })
                .expect("send diff request");
        }
        let mut got: HashMap<IntervalId, PageDiff> = HashMap::new();
        for _ in 0..n_requests {
            let env = self.wait_for(|m| matches!(m, HMsg::DiffReply { page: p, .. } if *p == page));
            if let HMsg::DiffReply { diffs, .. } = env.payload {
                for (iv, d) in diffs {
                    self.ctx.charge_copy(d.encoded_size());
                    got.insert(iv, d);
                }
            }
        }
        let e = &mut self.pages[page as usize];
        for iv in order {
            if let Some(d) = got.get(&iv) {
                d.apply(e.frame.as_mut().expect("frame"));
            }
            e.applied.observe(iv);
        }
        e.state = PageState::ReadOnly;
        let waited = self.ctx.now() - asked_at;
        self.ctx.metrics.fetch_latency_ns.record(waited.as_nanos());
        self.ctx.trace(TraceKind::PageFetch {
            page,
            from: owner,
            wait_ns: waited.as_nanos(),
        });
    }

    /// Close the current interval: diff every dirty page against its
    /// twin and *retain* the diff in the archive (nothing is flushed
    /// anywhere — that is the homeless model).
    fn end_interval(&mut self) {
        self.pump();
        let me = self.me() as u32;
        let dirty: Vec<PageId> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dirty)
            .map(|(p, _)| p as PageId)
            .collect();
        if dirty.is_empty() {
            return;
        }
        let iv = IntervalId {
            node: me,
            seq: self.next_interval,
        };
        self.next_interval += 1;
        self.vc.observe(iv);
        let page_size = self.cfg.layout.page_size();
        for p in dirty {
            let notice = WriteNotice {
                page: p,
                interval: iv,
            };
            self.history.push(notice);
            let e = &mut self.pages[p as usize];
            e.dirty = false;
            e.state = PageState::ReadOnly;
            e.applied.observe(iv);
            e.notices.push(notice);
            let twin = e.twin.take().expect("dirty page without twin");
            let frame = e.frame.as_ref().expect("dirty page without frame");
            let diff = PageDiff::create(p, &twin, frame);
            self.pool.recycle_frame(twin.into_frame());
            self.ctx.charge_copy(2 * page_size);
            self.ctx.stats.diffs_created += 1;
            self.ctx.stats.diff_bytes += diff.encoded_size() as u64;
            self.ctx
                .metrics
                .diff_bytes
                .record(diff.encoded_size() as u64);
            self.archive_bytes += diff.encoded_size();
            self.archive.insert((p, iv.seq), diff);
        }
    }

    fn apply_notices(&mut self, notices: &[WriteNotice], vc_in: &VClock) {
        let me = self.me() as u32;
        let vc_before = self.vc.clone();
        let mut fresh = 0u32;
        for n in notices {
            if vc_before.covers(n.interval) {
                continue;
            }
            if self.history.contains(n) {
                continue;
            }
            self.vc.observe(n.interval);
            self.history.push(*n);
            fresh += 1;
            let e = &mut self.pages[n.page as usize];
            e.notices.push(*n);
            if n.interval.node != me {
                // Invalidate, but keep the stale frame: homeless LRC
                // updates it in place with diffs at the next access.
                e.state = PageState::Invalid;
                e.twin = None;
                e.dirty = false;
            }
        }
        self.vc.join(vc_in);
        if fresh > 0 {
            self.ctx.trace(TraceKind::NoticesApplied { count: fresh });
        }
    }

    /// Acquire a global lock.
    pub fn acquire(&mut self, lock: u32) {
        self.end_interval();
        let mgr = self.cfg.lock_manager(lock);
        let vc = self.vc.clone();
        let asked_at = self.ctx.now();
        self.ctx
            .send(mgr, HMsg::LockRequest { lock, vc })
            .expect("send lock request");
        let env = self.wait_for(|m| matches!(m, HMsg::LockGrant { lock: l, .. } if *l == lock));
        if let HMsg::LockGrant { vc, notices, .. } = env.payload {
            self.apply_notices(&notices, &vc);
            self.lock_grant_vcs.insert(lock, vc);
        }
        let waited = self.ctx.now() - asked_at;
        self.ctx.metrics.lock_wait_ns.record(waited.as_nanos());
        self.ctx.stats.lock_acquires += 1;
        self.ctx.trace(TraceKind::LockAcquire {
            lock,
            wait_ns: waited.as_nanos(),
        });
    }

    /// Release a global lock.
    pub fn release(&mut self, lock: u32) {
        self.end_interval();
        let grant_vc = self
            .lock_grant_vcs
            .remove(&lock)
            .unwrap_or_else(|| VClock::new(self.cfg.n_nodes));
        let notices: Vec<WriteNotice> = self
            .history
            .iter()
            .filter(|n| !grant_vc.covers(n.interval))
            .copied()
            .collect();
        let mgr = self.cfg.lock_manager(lock);
        let vc = self.vc.clone();
        self.ctx
            .send(mgr, HMsg::LockRelease { lock, vc, notices })
            .expect("send lock release");
        self.ctx.trace(TraceKind::LockRelease { lock });
    }

    /// Global barrier.
    pub fn barrier(&mut self) {
        self.end_interval();
        let epoch = self.barrier_epoch;
        self.ctx.trace(TraceKind::BarrierEnter { epoch });
        self.barrier_epoch += 1;
        let notices: Vec<WriteNotice> = self
            .history
            .iter()
            .filter(|n| !self.last_barrier_vc.covers(n.interval))
            .copied()
            .collect();
        let me = self.me();
        if me == 0 {
            let now = self.ctx.now();
            let vc = self.vc.clone();
            let mgr = self.barrier_mgr.as_mut().expect("manager");
            mgr.arrive(me, &vc, &notices, &[], now);
            // Gather the cluster: service traffic until everyone arrived.
            self.service_while(|node| {
                node.barrier_mgr.as_ref().expect("manager").arrived_count() < node.cfg.n_nodes
            });
            let handler = self.ctx.cost.cpu.message_handler;
            let mgr = self.barrier_mgr.as_mut().expect("manager");
            let release_time = mgr.latest_arrival.max(now) + handler;
            let merged_vc = mgr.merged_vc.clone();
            let merged = std::mem::take(&mut mgr.merged_notices);
            let straggler = mgr.straggler;
            let spread_ns = (mgr.latest_arrival - mgr.earliest_arrival).as_nanos();
            mgr.reset();
            self.ctx.trace(TraceKind::BarrierReleased {
                epoch,
                straggler,
                spread_ns,
            });
            for node in 1..self.cfg.n_nodes {
                self.ctx
                    .send_from(
                        release_time,
                        node,
                        HMsg::BarrierRelease {
                            epoch,
                            vc: merged_vc.clone(),
                            notices: merged.clone(),
                        },
                    )
                    .expect("send barrier release");
            }
            self.ctx.wait_until(release_time);
            self.apply_notices(&merged, &merged_vc);
        } else {
            let vc = self.vc.clone();
            self.ctx
                .send(0, HMsg::BarrierArrive { epoch, vc, notices })
                .expect("send barrier arrive");
            let env = self
                .wait_for(|m| matches!(m, HMsg::BarrierRelease { epoch: e, .. } if *e == epoch));
            if let HMsg::BarrierRelease { vc, notices, .. } = env.payload {
                self.apply_notices(&notices, &vc);
            }
        }
        self.last_barrier_vc = self.vc.clone();
        let lb = self.last_barrier_vc.clone();
        self.history.retain(|n| !lb.covers(n.interval));
        self.ctx.stats.barriers += 1;
        self.ctx.trace(TraceKind::BarrierExit { epoch });
    }

    /// Wall-clock-free drain cost model: homeless LRC has no flushes; we
    /// only expose the archive footprint.
    pub fn archive_footprint(&self) -> (usize, usize) {
        (self.archive.len(), self.archive_bytes)
    }

    /// No-op charge helper mirroring the HLRC-side API.
    pub fn charge_flops(&mut self, n: u64) {
        self.ctx.charge_flops(n);
    }
}

/// The engine runs the homeless node too: same pump and blocking loop
/// as HLRC, no deferral (this protocol has no logging/recovery layer).
impl CoherenceProtocol<HMsg> for HomelessNode {
    fn ctx(&mut self) -> &mut NodeCtx<HMsg> {
        &mut self.ctx
    }

    fn service(&mut self, env: Envelope<HMsg>, deferred: bool) {
        let handler = self.ctx.cost.cpu.message_handler;
        let done = self.ctx.async_service_base(&env, deferred) + handler;
        match &env.payload {
            HMsg::CopyRequest { page } => {
                let e = &self.pages[*page as usize];
                let data = SharedBytes::copy_of(e.frame.as_ref().expect("owner frame").bytes());
                let applied = e.applied.clone();
                let cost = self.ctx.cost.cpu.copy(data.len());
                self.ctx
                    .send_from(
                        done + cost,
                        env.src,
                        HMsg::CopyReply {
                            page: *page,
                            data,
                            applied,
                        },
                    )
                    .expect("send copy reply");
            }
            HMsg::DiffRequest { page, seqs } => {
                let me = self.me() as u32;
                let diffs: Vec<(IntervalId, PageDiff)> = seqs
                    .iter()
                    .filter_map(|&seq| {
                        self.archive
                            .get(&(*page, seq))
                            .map(|d| (IntervalId { node: me, seq }, d.clone()))
                    })
                    .collect();
                let payload: usize = diffs.iter().map(|(_, d)| d.encoded_size()).sum();
                let cost = self.ctx.cost.cpu.copy(payload);
                self.ctx
                    .send_from(done + cost, env.src, HMsg::DiffReply { page: *page, diffs })
                    .expect("send diff reply");
            }
            HMsg::LockRequest { lock, vc } => {
                let st = self.locks.state_mut(*lock);
                if st.held {
                    st.queue.push_back(PendingAcquire {
                        node: env.src,
                        vc: vc.clone(),
                        arrive: env.arrive_at,
                    });
                } else {
                    st.held = true;
                    let grant_at = done.max(st.last_release + handler);
                    let notices = st.notices_for(vc);
                    let lvc = st.vc.clone();
                    let holder = st.record_grant(env.src);
                    self.ctx.trace(TraceKind::LockGranted {
                        lock: *lock,
                        to: env.src,
                        holder,
                    });
                    self.ctx
                        .send_from(
                            grant_at,
                            env.src,
                            HMsg::LockGrant {
                                lock: *lock,
                                vc: lvc,
                                notices,
                            },
                        )
                        .expect("send grant");
                }
            }
            HMsg::LockRelease { lock, vc, notices } => {
                let st = self.locks.state_mut(*lock);
                st.record_release(vc, notices, env.arrive_at);
                if let Some(next) = st.queue.pop_front() {
                    st.held = true;
                    let grant_at = done.max(next.arrive + handler);
                    let out = st.notices_for(&next.vc);
                    let lvc = st.vc.clone();
                    let holder = st.record_grant(next.node);
                    self.ctx.trace(TraceKind::LockGranted {
                        lock: *lock,
                        to: next.node,
                        holder,
                    });
                    self.ctx
                        .send_from(
                            grant_at,
                            next.node,
                            HMsg::LockGrant {
                                lock: *lock,
                                vc: lvc,
                                notices: out,
                            },
                        )
                        .expect("send queued grant");
                }
            }
            HMsg::BarrierArrive { vc, notices, .. } => {
                self.barrier_mgr
                    .as_mut()
                    .expect("barrier arrive at non-manager")
                    .arrive(env.src, vc, notices, &[], env.arrive_at);
            }
            other => unreachable!("unexpected async {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::run_cluster;

    fn cfg(n: usize, pages: u32) -> DsmConfig {
        DsmConfig::new(n, pages).with_page_size(256)
    }

    fn spawn<F, R>(c: DsmConfig, f: F) -> Vec<R>
    where
        F: Fn(HomelessNode) -> R + Send + Sync,
        R: Send,
    {
        run_cluster(c.n_nodes, c.cost, move |ctx| f(HomelessNode::new(ctx, c)))
    }

    #[test]
    fn producer_consumer_through_barrier() {
        let out = spawn(cfg(3, 3), |mut node| {
            if node.me() == 0 {
                node.write_u64(256 + 8, 4242);
            }
            node.barrier();
            let v = node.read_u64(256 + 8);
            node.barrier();
            v
        });
        assert_eq!(out, vec![4242, 4242, 4242]);
    }

    #[test]
    fn multiple_writers_merge_via_diffs() {
        let out = spawn(cfg(3, 3), |mut node| {
            match node.me() {
                0 => node.write_u64(512, 11),
                1 => node.write_u64(512 + 64, 22),
                _ => {}
            }
            node.barrier();
            let a = node.read_u64(512);
            let b = node.read_u64(512 + 64);
            node.barrier();
            (a, b)
        });
        assert!(out.iter().all(|&(a, b)| a == 11 && b == 22));
    }

    #[test]
    fn lock_counter_is_exact() {
        const ROUNDS: u64 = 5;
        let out = spawn(cfg(3, 3), move |mut node| {
            for _ in 0..ROUNDS {
                node.acquire(7);
                let v = node.read_u64(0);
                node.write_u64(0, v + 1);
                node.release(7);
            }
            node.barrier();
            let v = node.read_u64(0);
            node.barrier();
            v
        });
        assert!(out.iter().all(|&v| v == 3 * ROUNDS));
    }

    #[test]
    fn archive_grows_without_bound() {
        // The homeless disadvantage the paper cites: every interval's
        // diffs are retained.
        let out = spawn(cfg(2, 2), |mut node| {
            for round in 0..10u64 {
                if node.me() == 1 {
                    node.write_u64(8, round); // page 0, owned by node 0
                }
                node.barrier();
                let _ = node.read_u64(8);
                node.barrier();
            }
            node.archive_footprint()
        });
        let (diffs, bytes) = out[1];
        assert_eq!(diffs, 10, "one retained diff per interval");
        assert!(bytes > 0);
    }

    #[test]
    fn stale_copy_updated_in_place() {
        // Reader keeps its frame across invalidations; revalidation
        // applies only the missing diffs.
        let out = spawn(cfg(2, 2), |mut node| {
            for round in 1..=3u64 {
                if node.me() == 0 {
                    node.write_u64(0, round);
                }
                node.barrier();
                assert_eq!(node.read_u64(0), round);
                node.barrier();
            }
            node.ctx.stats.page_fetches
        });
        // Node 1 revalidates each round (3 fetch episodes), node 0 none.
        assert_eq!(out[0], 0);
        assert_eq!(out[1], 3);
    }

    #[test]
    fn hmsg_codec_roundtrips() {
        let mut vc = VClock::new(3);
        vc.set(1, 4);
        let iv = IntervalId { node: 1, seq: 2 };
        let base = PageFrame::zeroed(64);
        let twin = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(0, 5);
        let diff = PageDiff::create(1, &twin, &m);
        for msg in [
            HMsg::CopyRequest { page: 1 },
            HMsg::CopyReply {
                page: 1,
                data: vec![0; 64].into(),
                applied: vc.clone(),
            },
            HMsg::DiffRequest {
                page: 1,
                seqs: vec![0, 1],
            },
            HMsg::DiffReply {
                page: 1,
                diffs: vec![(iv, diff)],
            },
            HMsg::LockRequest {
                lock: 3,
                vc: vc.clone(),
            },
            HMsg::BarrierRelease {
                epoch: 2,
                vc,
                notices: vec![WriteNotice {
                    page: 0,
                    interval: iv,
                }],
            },
        ] {
            let bytes = msg.encode_to_vec();
            assert_eq!(bytes.len(), msg.encoded_size(), "direct size drifted");
            assert_eq!(HMsg::decode_from_slice(&bytes).unwrap(), msg);
        }
    }
}
