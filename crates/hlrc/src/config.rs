//! DSM cluster configuration.

use pagemem::{PageId, PageLayout};
use simnet::{CostModel, NodeId};

/// How shared pages are assigned to home nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomePolicy {
    /// Contiguous blocks of pages per node (default; matches how the
    /// paper's regular grid applications distribute their data).
    Block,
    /// Page `p` lives at node `p mod n`.
    RoundRobin,
    /// Pages start block-distributed, then migrate to the node that
    /// first writes them, committed deterministically at the first
    /// barrier from the write notices gathered there (so the initial
    /// touch pattern, not an allocation-time race, decides ownership).
    FirstTouch,
}

/// Static configuration of one DSM cluster run.
#[derive(Debug, Clone, Copy)]
pub struct DsmConfig {
    /// Number of processes (the paper uses 8).
    pub n_nodes: usize,
    /// Coherence granularity.
    pub layout: PageLayout,
    /// Size of the shared address space, in pages.
    pub n_pages: u32,
    /// Number of global locks available to the application.
    pub n_locks: u32,
    /// Home assignment policy.
    pub home_policy: HomePolicy,
    /// Maximum number of *extra* pages a fault's batch request may
    /// carry as history-predicted prefetch candidates. `0` disables
    /// batching and prefetch entirely (byte-exact legacy single
    /// request/reply fetch path).
    pub prefetch_depth: u32,
    /// Migrate a home page to the writer dominating its diff traffic,
    /// decided at checkpoint barriers (no effect without a checkpoint
    /// cadence). Each page migrates at most once.
    pub adaptive_migration: bool,
    /// Hardware cost model.
    pub cost: CostModel,
}

impl DsmConfig {
    /// A paper-like default: 8 nodes, 4 KB pages, block-distributed homes.
    pub fn new(n_nodes: usize, n_pages: u32) -> DsmConfig {
        DsmConfig {
            n_nodes,
            layout: PageLayout::OS_4K,
            n_pages,
            n_locks: 64,
            home_policy: HomePolicy::Block,
            prefetch_depth: DsmConfig::DEFAULT_PREFETCH_DEPTH,
            adaptive_migration: true,
            cost: CostModel::ULTRA5_CLUSTER,
        }
    }

    /// Default [`DsmConfig::prefetch_depth`]: up to eight predicted
    /// pages ride along with each demand fetch.
    pub const DEFAULT_PREFETCH_DEPTH: u32 = 8;

    /// Override the prefetch depth (`0` = stop-and-wait legacy fetch).
    pub fn with_prefetch_depth(mut self, depth: u32) -> DsmConfig {
        self.prefetch_depth = depth;
        self
    }

    /// Enable/disable adaptive home migration at checkpoint barriers.
    pub fn with_adaptive_migration(mut self, on: bool) -> DsmConfig {
        self.adaptive_migration = on;
        self
    }

    /// Override the page size (tests use small pages).
    pub fn with_page_size(mut self, bytes: usize) -> DsmConfig {
        self.layout = PageLayout::new(bytes);
        self
    }

    /// Override the home policy.
    pub fn with_home_policy(mut self, policy: HomePolicy) -> DsmConfig {
        self.home_policy = policy;
        self
    }

    /// Override the number of locks.
    pub fn with_locks(mut self, n: u32) -> DsmConfig {
        self.n_locks = n;
        self
    }

    /// Override the hardware cost model.
    pub fn with_cost(mut self, cost: CostModel) -> DsmConfig {
        self.cost = cost;
        self
    }

    /// Home node of page `p`.
    pub fn home_of(&self, p: PageId) -> NodeId {
        debug_assert!(p < self.n_pages, "page {p} out of range");
        match self.home_policy {
            HomePolicy::RoundRobin => p as usize % self.n_nodes,
            // First-touch starts from the block layout; the real owner
            // is committed by migration at the first barrier.
            HomePolicy::Block | HomePolicy::FirstTouch => {
                let per = (self.n_pages as usize).div_ceil(self.n_nodes);
                (p as usize / per).min(self.n_nodes - 1)
            }
        }
    }

    /// Manager node of lock `l` (static assignment, as in TreadMarks).
    pub fn lock_manager(&self, l: u32) -> NodeId {
        l as usize % self.n_nodes
    }

    /// The barrier manager (node 0, as in TreadMarks).
    pub fn barrier_manager(&self) -> NodeId {
        0
    }

    /// Total shared bytes.
    pub fn shared_bytes(&self) -> usize {
        self.n_pages as usize * self.layout.page_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_homes_are_contiguous_and_cover_all_nodes() {
        let cfg = DsmConfig::new(4, 16);
        let homes: Vec<_> = (0..16).map(|p| cfg.home_of(p)).collect();
        assert_eq!(homes[0], 0);
        assert_eq!(homes[3], 0);
        assert_eq!(homes[4], 1);
        assert_eq!(homes[15], 3);
        // non-decreasing
        assert!(homes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn block_homes_clamp_with_uneven_division() {
        let cfg = DsmConfig::new(3, 10);
        // per = ceil(10/3) = 4 -> pages 0..4 at 0, 4..8 at 1, 8..10 at 2
        assert_eq!(cfg.home_of(0), 0);
        assert_eq!(cfg.home_of(7), 1);
        assert_eq!(cfg.home_of(9), 2);
    }

    #[test]
    fn round_robin_homes() {
        let cfg = DsmConfig::new(4, 16).with_home_policy(HomePolicy::RoundRobin);
        assert_eq!(cfg.home_of(0), 0);
        assert_eq!(cfg.home_of(5), 1);
        assert_eq!(cfg.home_of(15), 3);
    }

    #[test]
    fn managers() {
        let cfg = DsmConfig::new(4, 8);
        assert_eq!(cfg.lock_manager(0), 0);
        assert_eq!(cfg.lock_manager(6), 2);
        assert_eq!(cfg.barrier_manager(), 0);
    }

    #[test]
    fn first_touch_starts_from_block_layout() {
        let blk = DsmConfig::new(4, 16);
        let ft = DsmConfig::new(4, 16).with_home_policy(HomePolicy::FirstTouch);
        for p in 0..16 {
            assert_eq!(ft.home_of(p), blk.home_of(p));
        }
    }

    #[test]
    fn prefetch_defaults_and_overrides() {
        let cfg = DsmConfig::new(4, 16);
        assert_eq!(cfg.prefetch_depth, 8);
        assert!(cfg.adaptive_migration);
        let off = cfg.with_prefetch_depth(0).with_adaptive_migration(false);
        assert_eq!(off.prefetch_depth, 0);
        assert!(!off.adaptive_migration);
    }

    #[test]
    fn shared_bytes() {
        let cfg = DsmConfig::new(2, 8).with_page_size(256);
        assert_eq!(cfg.shared_bytes(), 2048);
    }
}
