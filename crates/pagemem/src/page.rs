//! Page frames: the physical backing of one shared page on one node.

use std::fmt;

/// One page's worth of bytes, with little-endian typed accessors.
///
/// All accesses are bounds-checked; typed accessors additionally require
/// natural alignment of the offset, mirroring what real hardware would
/// enforce on the paper's SPARC testbed.
#[derive(Clone, PartialEq, Eq)]
pub struct PageFrame {
    data: Box<[u8]>,
}

impl PageFrame {
    /// A zero-filled frame of `size` bytes.
    pub fn zeroed(size: usize) -> PageFrame {
        PageFrame {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// A frame initialized from existing bytes.
    pub fn from_bytes(bytes: &[u8]) -> PageFrame {
        PageFrame {
            data: bytes.to_vec().into_boxed_slice(),
        }
    }

    /// A frame taking ownership of an existing backing store (the
    /// pooling path — see [`crate::BufferPool`]).
    pub fn from_boxed(data: Box<[u8]>) -> PageFrame {
        PageFrame { data }
    }

    /// Consume the frame, yielding its backing store for reuse.
    pub fn into_boxed(self) -> Box<[u8]> {
        self.data
    }

    #[inline]
    /// Size of the frame in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    /// Whether the frame holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    /// Read-only view of the frame's bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    #[inline]
    /// Mutable view of the frame's bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Overwrite the whole frame from `src` (must be the same length).
    pub fn copy_from(&mut self, src: &PageFrame) {
        assert_eq!(self.len(), src.len(), "page size mismatch");
        self.data.copy_from_slice(&src.data);
    }

    #[inline]
    fn check_aligned(&self, offset: usize, size: usize) {
        assert!(
            offset + size <= self.data.len(),
            "access at {offset}+{size} beyond page of {}",
            self.data.len()
        );
        assert!(
            offset.is_multiple_of(size),
            "misaligned {size}-byte access at offset {offset}"
        );
    }

    #[inline]
    /// Read a little-endian u64 at a naturally aligned offset.
    pub fn read_u64(&self, offset: usize) -> u64 {
        self.check_aligned(offset, 8);
        u64::from_le_bytes(self.data[offset..offset + 8].try_into().unwrap())
    }

    #[inline]
    /// Write a little-endian u64 at a naturally aligned offset.
    pub fn write_u64(&mut self, offset: usize, v: u64) {
        self.check_aligned(offset, 8);
        self.data[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
    }

    #[inline]
    /// Read an f64 (as stored little-endian bits).
    pub fn read_f64(&self, offset: usize) -> f64 {
        f64::from_bits(self.read_u64(offset))
    }

    #[inline]
    /// Write an f64 (as little-endian bits).
    pub fn write_f64(&mut self, offset: usize, v: f64) {
        self.write_u64(offset, v.to_bits());
    }

    #[inline]
    /// Read a little-endian u32 at a naturally aligned offset.
    pub fn read_u32(&self, offset: usize) -> u32 {
        self.check_aligned(offset, 4);
        u32::from_le_bytes(self.data[offset..offset + 4].try_into().unwrap())
    }

    #[inline]
    /// Write a little-endian u32 at a naturally aligned offset.
    pub fn write_u32(&mut self, offset: usize, v: u32) {
        self.check_aligned(offset, 4);
        self.data[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

impl fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nz = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "PageFrame({} bytes, {} non-zero)", self.data.len(), nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_len() {
        let p = PageFrame::zeroed(128);
        assert_eq!(p.len(), 128);
        assert!(!p.is_empty());
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_roundtrips() {
        let mut p = PageFrame::zeroed(64);
        p.write_u64(8, 0xDEAD_BEEF_0123_4567);
        assert_eq!(p.read_u64(8), 0xDEAD_BEEF_0123_4567);
        p.write_f64(16, -3.25);
        assert_eq!(p.read_f64(16), -3.25);
        p.write_u32(4, 77);
        assert_eq!(p.read_u32(4), 77);
    }

    #[test]
    fn from_bytes_copies() {
        let p = PageFrame::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(p.read_u64(0), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn copy_from_replaces_contents() {
        let mut a = PageFrame::zeroed(16);
        let mut b = PageFrame::zeroed(16);
        b.write_u64(0, 42);
        a.copy_from(&b);
        assert_eq!(a.read_u64(0), 42);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_access_panics() {
        let p = PageFrame::zeroed(64);
        p.read_u64(4);
    }

    #[test]
    #[should_panic(expected = "beyond page")]
    fn out_of_bounds_panics() {
        let p = PageFrame::zeroed(8);
        p.read_u64(8);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn copy_from_size_mismatch_panics() {
        let mut a = PageFrame::zeroed(8);
        let b = PageFrame::zeroed(16);
        a.copy_from(&b);
    }
}
