//! Global shared address space layout.
//!
//! The DSM exposes one flat byte-addressable shared space, split into
//! fixed-size pages — the coherence unit, just as the OS page is the
//! coherence unit in the paper's TreadMarks derivative.

use std::ops::Range;

/// Identifier of one shared page.
pub type PageId = u32;

/// Page-size bookkeeping for the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    page_size: usize,
}

impl PageLayout {
    /// The paper's coherence granularity: one 4 KB OS page.
    pub const OS_4K: PageLayout = PageLayout { page_size: 4096 };

    /// Create a layout with a custom page size (power of two, >= 8).
    ///
    /// # Panics
    /// Panics if `page_size` is not a power of two or is smaller than 8
    /// (one machine word of diff granularity).
    pub fn new(page_size: usize) -> PageLayout {
        assert!(
            page_size.is_power_of_two() && page_size >= 8,
            "page size must be a power of two >= 8, got {page_size}"
        );
        PageLayout { page_size }
    }

    #[inline]
    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Page containing byte address `addr`.
    #[inline]
    pub fn page_of(&self, addr: usize) -> PageId {
        (addr / self.page_size) as PageId
    }

    /// Offset of byte address `addr` within its page.
    #[inline]
    pub fn offset_of(&self, addr: usize) -> usize {
        addr % self.page_size
    }

    /// First byte address of `page`.
    #[inline]
    pub fn base_of(&self, page: PageId) -> usize {
        page as usize * self.page_size
    }

    /// Pages overlapped by the byte range `[range.start, range.end)`.
    pub fn pages_spanning(&self, range: Range<usize>) -> Range<PageId> {
        if range.start >= range.end {
            return 0..0;
        }
        let first = self.page_of(range.start);
        let last = self.page_of(range.end - 1);
        first..last + 1
    }

    /// Number of pages needed to hold `bytes` bytes.
    pub fn pages_for(&self, bytes: usize) -> u32 {
        (bytes.div_ceil(self.page_size)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_page_layout() {
        let l = PageLayout::OS_4K;
        assert_eq!(l.page_size(), 4096);
        assert_eq!(l.page_of(0), 0);
        assert_eq!(l.page_of(4095), 0);
        assert_eq!(l.page_of(4096), 1);
        assert_eq!(l.offset_of(4097), 1);
        assert_eq!(l.base_of(2), 8192);
    }

    #[test]
    fn spanning_ranges() {
        let l = PageLayout::new(64);
        assert_eq!(l.pages_spanning(0..1), 0..1);
        assert_eq!(l.pages_spanning(0..64), 0..1);
        assert_eq!(l.pages_spanning(0..65), 0..2);
        assert_eq!(l.pages_spanning(63..129), 0..3);
        assert_eq!(l.pages_spanning(10..10), 0..0);
        assert_eq!(l.pages_spanning(128..192), 2..3);
    }

    #[test]
    fn pages_for_rounds_up() {
        let l = PageLayout::new(64);
        assert_eq!(l.pages_for(0), 0);
        assert_eq!(l.pages_for(1), 1);
        assert_eq!(l.pages_for(64), 1);
        assert_eq!(l.pages_for(65), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        PageLayout::new(100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_tiny_pages() {
        PageLayout::new(4);
    }
}
