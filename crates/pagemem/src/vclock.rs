//! Interval numbering and vector timestamps.
//!
//! Lazy release consistency divides each process's execution into
//! *intervals* delimited by synchronization operations. A [`VClock`]
//! records, per process, the highest interval whose updates are visible —
//! the machinery HLRC uses to decide which write-invalidation notices an
//! acquirer still needs, and which the CCL recovery protocol uses to
//! decide whether a home copy has advanced past the interval being
//! replayed.

use std::cmp::Ordering;
use std::fmt;

use crate::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// A (process, interval sequence) pair naming one interval globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntervalId {
    /// The process whose interval this is.
    pub node: u32,
    /// That process's interval sequence number (starts at 0).
    pub seq: u32,
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}#{}", self.node, self.seq)
    }
}

impl Encode for IntervalId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.node);
        w.put_u32(self.seq);
    }

    fn encoded_size(&self) -> usize {
        8
    }
}

impl Decode for IntervalId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(IntervalId {
            node: r.get_u32()?,
            seq: r.get_u32()?,
        })
    }
}

/// Vector timestamp over the cluster's processes.
///
/// `clock[p]` = number of process `p`'s intervals whose updates are
/// visible; i.e. intervals `0..clock[p]` have been seen.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VClock {
    clock: Vec<u32>,
}

/// Result of comparing two vector timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VOrder {
    /// The two clocks are identical.
    Equal,
    /// Self dominated by other (self happened-before other).
    Before,
    /// Self dominates other.
    After,
    /// Neither dominates the other.
    Concurrent,
}

impl VClock {
    /// All-zero clock for an `n`-process cluster.
    pub fn new(n: usize) -> VClock {
        VClock { clock: vec![0; n] }
    }

    /// Number of processes this clock spans.
    pub fn len(&self) -> usize {
        self.clock.len()
    }

    /// Whether the clock spans zero processes.
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
    }

    /// Visible interval count for process `node`.
    #[inline]
    pub fn get(&self, node: u32) -> u32 {
        self.clock[node as usize]
    }

    /// Set process `node`'s visible interval count.
    #[inline]
    pub fn set(&mut self, node: u32, v: u32) {
        self.clock[node as usize] = v;
    }

    /// Has interval `iv` been seen (its updates are visible)?
    #[inline]
    pub fn covers(&self, iv: IntervalId) -> bool {
        self.get(iv.node) > iv.seq
    }

    /// Record interval `iv` as seen (and everything before it from the
    /// same process, which interval numbering guarantees).
    pub fn observe(&mut self, iv: IntervalId) {
        let e = &mut self.clock[iv.node as usize];
        *e = (*e).max(iv.seq + 1);
    }

    /// Pointwise maximum (merge what another process has seen).
    pub fn join(&mut self, other: &VClock) {
        assert_eq!(self.len(), other.len(), "vector clock size mismatch");
        for (a, b) in self.clock.iter_mut().zip(&other.clock) {
            *a = (*a).max(*b);
        }
    }

    /// Compare under the standard vector-clock partial order.
    pub fn compare(&self, other: &VClock) -> VOrder {
        assert_eq!(self.len(), other.len(), "vector clock size mismatch");
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.clock.iter().zip(&other.clock) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => VOrder::Equal,
            (true, false) => VOrder::Before,
            (false, true) => VOrder::After,
            (true, true) => VOrder::Concurrent,
        }
    }

    /// `self <= other` pointwise.
    pub fn dominated_by(&self, other: &VClock) -> bool {
        matches!(self.compare(other), VOrder::Equal | VOrder::Before)
    }

    /// Iterate over `(node, count)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.clock.iter().enumerate().map(|(i, &c)| (i as u32, c))
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.clock.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

impl Encode for VClock {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(self.clock.len() as u16);
        for &c in &self.clock {
            w.put_u32(c);
        }
    }

    fn encoded_size(&self) -> usize {
        2 + 4 * self.clock.len()
    }
}

impl Decode for VClock {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.get_u16()? as usize;
        let mut clock = Vec::with_capacity(n);
        for _ in 0..n {
            clock.push(r.get_u32()?);
        }
        Ok(VClock { clock })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_and_cover() {
        let mut v = VClock::new(4);
        let iv = IntervalId { node: 2, seq: 0 };
        assert!(!v.covers(iv));
        v.observe(iv);
        assert!(v.covers(iv));
        assert!(!v.covers(IntervalId { node: 2, seq: 1 }));
        // observing a later interval implies earlier ones
        v.observe(IntervalId { node: 2, seq: 5 });
        assert!(v.covers(IntervalId { node: 2, seq: 3 }));
        assert_eq!(v.get(2), 6);
    }

    #[test]
    fn observe_is_monotone() {
        let mut v = VClock::new(2);
        v.observe(IntervalId { node: 0, seq: 7 });
        v.observe(IntervalId { node: 0, seq: 2 });
        assert_eq!(v.get(0), 8);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VClock::new(3);
        b.set(0, 2);
        b.set(1, 9);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 9);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn partial_order() {
        let mut a = VClock::new(2);
        let mut b = VClock::new(2);
        assert_eq!(a.compare(&b), VOrder::Equal);
        a.set(0, 1);
        assert_eq!(a.compare(&b), VOrder::After);
        assert_eq!(b.compare(&a), VOrder::Before);
        b.set(1, 1);
        assert_eq!(a.compare(&b), VOrder::Concurrent);
        assert!(!a.dominated_by(&b));
        b.set(0, 1);
        assert!(a.dominated_by(&b));
    }

    #[test]
    fn codec_roundtrip() {
        let mut v = VClock::new(5);
        v.set(1, 42);
        v.set(4, 7);
        let bytes = v.encode_to_vec();
        assert_eq!(bytes.len(), v.encoded_size());
        assert_eq!(VClock::decode_from_slice(&bytes).unwrap(), v);

        let iv = IntervalId { node: 3, seq: 11 };
        let bytes = iv.encode_to_vec();
        assert_eq!(bytes.len(), 8);
        assert_eq!(IntervalId::decode_from_slice(&bytes).unwrap(), iv);
    }

    #[test]
    fn display_formats() {
        let mut v = VClock::new(3);
        v.set(1, 2);
        assert_eq!(v.to_string(), "<0,2,0>");
        assert_eq!(IntervalId { node: 1, seq: 2 }.to_string(), "P1#2");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn join_size_mismatch_panics() {
        let mut a = VClock::new(2);
        a.join(&VClock::new(3));
    }
}
