//! A cheap immutable byte buffer for page payloads.
//!
//! Page-carrying messages used to own a fresh `Vec<u8>` copy of the
//! page, which the simnet router then deep-copied again for duplicate
//! deliveries and the loggers copied a third time into log records.
//! [`SharedBytes`] is an in-tree `Bytes`-style wrapper (an `Arc<[u8]>`,
//! no external deps): every clone is a reference-count bump, so one
//! allocation is shared across the envelope, its duplicates, and the
//! log append. Wire and log *accounting* always uses the logical
//! length ([`SharedBytes::len`]), never the physical sharing, so
//! reported byte counts are unchanged.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte string (`Arc<[u8]>` under the hood).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SharedBytes(Arc<[u8]>);

impl SharedBytes {
    /// Share a copy of `bytes` (one allocation, then free clones).
    pub fn copy_of(bytes: &[u8]) -> SharedBytes {
        SharedBytes(Arc::from(bytes))
    }

    /// Logical length in bytes — the number that enters wire and log
    /// accounting.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> SharedBytes {
        SharedBytes(Arc::from(v))
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(v: &[u8]) -> SharedBytes {
        SharedBytes(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for SharedBytes {
    fn from(v: [u8; N]) -> SharedBytes {
        SharedBytes(Arc::from(v.as_slice()))
    }
}

impl Deref for SharedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a: SharedBytes = vec![1u8, 2, 3].into();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn equality_is_by_contents() {
        let a = SharedBytes::copy_of(&[5, 6]);
        let b: SharedBytes = vec![5u8, 6].into();
        assert_eq!(a, b);
        assert_ne!(a, SharedBytes::copy_of(&[5]));
    }

    #[test]
    fn len_and_deref() {
        let s: SharedBytes = (&[9u8, 9, 9][..]).into();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.as_slice(), &[9, 9, 9]);
        assert_eq!(s.iter().sum::<u8>(), 27);
    }
}
