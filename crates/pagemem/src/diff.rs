//! Twins and diffs: the multiple-writer write-collection machinery.
//!
//! Before the first write to a non-home page in an interval, the DSM
//! makes a *twin* (pristine copy). At the next release or barrier it
//! *diffs* the modified page against its twin — comparing 4-byte words,
//! as TreadMarks did — and ships the run-length-encoded result to the
//! page's home node, which applies it to the home copy.
//!
//! The comparison kernel is a two-speed scan: with no run open it
//! skips unchanged spans with wide (vectorized) 64-byte compares, and
//! with a run open it races through fully-changed `u64` chunks,
//! dropping to word granularity only at the chunk that contains a run
//! boundary. The boundaries are bit-identical to the word-at-a-time
//! reference implementation ([`PageDiff::create_reference`]) while
//! doing per-word work only where runs start and end.

use crate::addr::PageId;
use crate::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use crate::page::PageFrame;
use crate::pool::BufferPool;

/// Word granularity of diff comparison, in bytes.
pub const DIFF_WORD: usize = 4;

/// Chunk granularity of the scan (two diff words, one `u64` load each
/// side).
const CHUNK: usize = 8;

/// Block granularity of the skip loop over unchanged spans. Slice
/// equality at this width compiles to wide vector compares, so clean
/// spans cost a fraction of a word-at-a-time scan.
const SKIP: usize = 64;

/// A pristine pre-write copy of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Twin {
    data: PageFrame,
}

impl Twin {
    /// Snapshot `page` before the first write of the interval.
    pub fn of(page: &PageFrame) -> Twin {
        Twin { data: page.clone() }
    }

    /// Snapshot `page`, drawing the backing store from `pool` so the
    /// steady-state twin churn of an interval allocates nothing.
    pub fn of_with(page: &PageFrame, pool: &mut BufferPool) -> Twin {
        Twin {
            data: pool.frame_copy_of(page),
        }
    }

    /// The pristine bytes.
    pub fn bytes(&self) -> &[u8] {
        self.data.bytes()
    }

    /// The pristine page frame.
    pub fn frame(&self) -> &PageFrame {
        &self.data
    }

    /// Consume the twin, yielding its frame (for recycling into a
    /// [`BufferPool`] once the diff has been taken).
    pub fn into_frame(self) -> PageFrame {
        self.data
    }
}

/// One contiguous modified byte range within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page (word-aligned).
    pub offset: u32,
    /// Replacement bytes (length a multiple of the diff word).
    pub data: Vec<u8>,
}

/// The encoded summary of modifications made to one page in one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDiff {
    /// Which shared page this diff modifies.
    pub page: PageId,
    /// Modified runs in ascending, non-overlapping offset order.
    pub runs: Vec<DiffRun>,
}

#[inline(always)]
fn word_differs(old: &[u8], new: &[u8], at: usize) -> bool {
    let o = u32::from_ne_bytes(old[at..at + DIFF_WORD].try_into().unwrap());
    let n = u32::from_ne_bytes(new[at..at + DIFF_WORD].try_into().unwrap());
    o != n
}

#[inline(always)]
fn chunk_at(b: &[u8], at: usize) -> u64 {
    u64::from_ne_bytes(b[at..at + CHUNK].try_into().unwrap())
}

/// Which diff words of a chunk XOR (`old ^ new`) changed, in byte
/// order: `.0` covers bytes `[0, 4)` of the chunk, `.1` bytes `[4, 8)`.
/// XOR is bytewise, so slicing the native-endian byte representation is
/// endian-agnostic.
#[inline(always)]
fn changed_lanes(x: u64) -> (bool, bool) {
    let b = x.to_ne_bytes();
    (
        u32::from_ne_bytes(b[..4].try_into().unwrap()) != 0,
        u32::from_ne_bytes(b[4..].try_into().unwrap()) != 0,
    )
}

impl PageDiff {
    /// Compare `current` against its `twin` and collect modified words.
    ///
    /// # Panics
    /// Panics if the twin and page sizes differ or are not multiples of
    /// the diff word.
    pub fn create(page: PageId, twin: &Twin, current: &PageFrame) -> PageDiff {
        Self::build(page, twin, current, |new, start, end| {
            new[start..end].to_vec()
        })
    }

    /// [`PageDiff::create`], drawing run buffers from `pool` so diff
    /// construction recycles the byte vectors of previously applied
    /// diffs instead of allocating.
    pub fn create_in(
        page: PageId,
        twin: &Twin,
        current: &PageFrame,
        pool: &mut BufferPool,
    ) -> PageDiff {
        Self::build(page, twin, current, |new, start, end| {
            let mut buf = pool.take_buf(end - start);
            buf.extend_from_slice(&new[start..end]);
            buf
        })
    }

    /// The chunked scan. `make_run` materializes `new[start..end]`;
    /// factored out so the pooled and plain entry points share one
    /// kernel.
    fn build<F: FnMut(&[u8], usize, usize) -> Vec<u8>>(
        page: PageId,
        twin: &Twin,
        current: &PageFrame,
        mut make_run: F,
    ) -> PageDiff {
        let old = twin.bytes();
        let new = current.bytes();
        assert_eq!(old.len(), new.len(), "twin/page size mismatch");
        assert_eq!(new.len() % DIFF_WORD, 0, "page not word-divisible");

        let len = new.len();
        let mut runs = Vec::new();
        let mut run_start: Option<usize> = None;
        let mut at = 0usize;
        'scan: while at + CHUNK <= len {
            if run_start.is_none() {
                // No open run: race through unchanged spans — wide
                // blocks first (vectorized memcmp), then chunks to land
                // exactly on the first chunk that differs.
                while at + SKIP <= len && old[at..at + SKIP] == new[at..at + SKIP] {
                    at += SKIP;
                }
                while at + CHUNK <= len && chunk_at(old, at) == chunk_at(new, at) {
                    at += CHUNK;
                }
                if at + CHUNK > len {
                    break;
                }
                // Open a run at the chunk's first changed word; a
                // lone changed low word closes immediately.
                let (w0, w1) = changed_lanes(chunk_at(old, at) ^ chunk_at(new, at));
                match (w0, w1) {
                    (true, true) => run_start = Some(at),
                    (true, false) => runs.push(DiffRun {
                        offset: at as u32,
                        data: make_run(new, at, at + DIFF_WORD),
                    }),
                    // The chunk differs, so at least one word changed.
                    (false, _) => run_start = Some(at + DIFF_WORD),
                }
                at += CHUNK;
            } else {
                // Open run: race through fully-changed chunks; the
                // first chunk containing an unchanged word closes the
                // run exactly where the word-at-a-time scan would.
                while at + CHUNK <= len {
                    let (w0, w1) = changed_lanes(chunk_at(old, at) ^ chunk_at(new, at));
                    if w0 && w1 {
                        at += CHUNK;
                        continue;
                    }
                    let start = run_start.take().unwrap();
                    if w0 {
                        // Run extends through the low word, ends at the
                        // unchanged high word.
                        runs.push(DiffRun {
                            offset: start as u32,
                            data: make_run(new, start, at + DIFF_WORD),
                        });
                    } else {
                        runs.push(DiffRun {
                            offset: start as u32,
                            data: make_run(new, start, at),
                        });
                        if w1 {
                            run_start = Some(at + DIFF_WORD);
                        }
                    }
                    at += CHUNK;
                    continue 'scan;
                }
                break;
            }
        }
        // Tail narrower than one chunk (page sizes are word multiples,
        // so this is at most one word).
        while at < len {
            match (word_differs(old, new, at), run_start) {
                (true, None) => run_start = Some(at),
                (false, Some(start)) => {
                    runs.push(DiffRun {
                        offset: start as u32,
                        data: make_run(new, start, at),
                    });
                    run_start = None;
                }
                _ => {}
            }
            at += DIFF_WORD;
        }
        if let Some(start) = run_start {
            runs.push(DiffRun {
                offset: start as u32,
                data: make_run(new, start, len),
            });
        }
        PageDiff { page, runs }
    }

    /// The original word-at-a-time scan, kept as the executable
    /// specification of run boundaries: the chunked [`PageDiff::create`]
    /// must produce byte-identical output (enforced by a property test).
    pub fn create_reference(page: PageId, twin: &Twin, current: &PageFrame) -> PageDiff {
        let old = twin.bytes();
        let new = current.bytes();
        assert_eq!(old.len(), new.len(), "twin/page size mismatch");
        assert_eq!(new.len() % DIFF_WORD, 0, "page not word-divisible");

        let mut runs = Vec::new();
        let mut run_start: Option<usize> = None;
        let words = new.len() / DIFF_WORD;
        for w in 0..words {
            let at = w * DIFF_WORD;
            let changed = old[at..at + DIFF_WORD] != new[at..at + DIFF_WORD];
            match (changed, run_start) {
                (true, None) => run_start = Some(at),
                (false, Some(start)) => {
                    runs.push(DiffRun {
                        offset: start as u32,
                        data: new[start..at].to_vec(),
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            runs.push(DiffRun {
                offset: start as u32,
                data: new[start..].to_vec(),
            });
        }
        PageDiff { page, runs }
    }

    /// No modifications at all?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Apply this diff to `target` (the home copy, or a copy being
    /// reconstructed during recovery).
    ///
    /// Single-word runs take a fixed-size copy path: a scattered diff
    /// (false-sharing access patterns) is almost entirely 4-byte runs,
    /// and a generic `copy_from_slice` pays a `memcpy` call plus
    /// length dispatch per run — more than the copy itself at that
    /// size. The fixed-size path compiles to one load/store pair.
    ///
    /// # Panics
    /// Panics if a run falls outside the page. For input that crossed a
    /// trust boundary (wire or log), use [`PageDiff::apply_checked`].
    pub fn apply(&self, target: &mut PageFrame) {
        let bytes = target.bytes_mut();
        for run in &self.runs {
            let start = run.offset as usize;
            let data = run.data.as_slice();
            if let Ok(word) = <&[u8; DIFF_WORD]>::try_from(data) {
                let dst = &mut bytes[start..start + DIFF_WORD];
                dst.copy_from_slice(word);
            } else {
                bytes[start..start + data.len()].copy_from_slice(data);
            }
        }
    }

    /// [`PageDiff::apply`] with the bounds check surfaced as an error:
    /// a run extending past the page (which decode cannot reject — it
    /// does not know the page size) yields a [`CodecError`] instead of
    /// a panic.
    pub fn apply_checked(&self, target: &mut PageFrame) -> Result<(), CodecError> {
        let len = target.len() as u64;
        for run in &self.runs {
            if run.offset as u64 + run.data.len() as u64 > len {
                return Err(CodecError::Invalid {
                    context: "PageDiff",
                    reason: "run extends past the end of the page",
                });
            }
        }
        self.apply(target);
        Ok(())
    }
}

impl Encode for PageDiff {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.page);
        w.put_u16(self.runs.len() as u16);
        for run in &self.runs {
            w.put_u32(run.offset);
            w.put_bytes(&run.data);
        }
    }

    fn encoded_size(&self) -> usize {
        4 + 2
            + self
                .runs
                .iter()
                .map(|r| 4 + 4 + r.data.len())
                .sum::<usize>()
    }
}

impl Decode for PageDiff {
    /// Decode, rejecting structurally malformed diffs: runs must be
    /// word-aligned, non-empty word-multiples, and strictly ascending
    /// without overlap — exactly the invariants [`PageDiff::create`]
    /// guarantees. (Out-of-page offsets are caught by
    /// [`PageDiff::apply_checked`], since the page size is not known
    /// here.)
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let page = r.get_u32()?;
        let n = r.get_u16()? as usize;
        let mut runs = Vec::with_capacity(n);
        let mut prev_end = 0u64;
        for i in 0..n {
            let offset = r.get_u32()?;
            let data = r.get_bytes()?;
            if !(offset as usize).is_multiple_of(DIFF_WORD) {
                return Err(CodecError::Invalid {
                    context: "DiffRun",
                    reason: "offset not word-aligned",
                });
            }
            if data.is_empty() || !data.len().is_multiple_of(DIFF_WORD) {
                return Err(CodecError::Invalid {
                    context: "DiffRun",
                    reason: "length empty or not a word multiple",
                });
            }
            if i > 0 && (offset as u64) < prev_end {
                return Err(CodecError::Invalid {
                    context: "DiffRun",
                    reason: "runs overlap or are out of order",
                });
            }
            prev_end = offset as u64 + data.len() as u64;
            runs.push(DiffRun { offset, data });
        }
        Ok(PageDiff { page, runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u64)], size: usize) -> PageFrame {
        let mut p = PageFrame::zeroed(size);
        for &(off, v) in vals {
            p.write_u64(off, v);
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let p = page_with(&[(0, 7)], 64);
        let t = Twin::of(&p);
        let d = PageDiff::create(3, &t, &p);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let p = page_with(&[], 64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(8, 0xFFFF_FFFF);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 4);
    }

    #[test]
    fn adjacent_words_merge_into_one_run() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u64(16, u64::MAX); // words at 16 and 20
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 16);
        assert_eq!(d.runs[0].data.len(), 8);
    }

    #[test]
    fn separated_changes_make_separate_runs() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(0, 1);
        p2.write_u32(32, 2);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].offset, 0);
        assert_eq!(d.runs[1].offset, 32);
    }

    #[test]
    fn change_at_page_end_is_captured() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(60, 9);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 60);
    }

    #[test]
    fn run_straddling_a_chunk_boundary_matches_reference() {
        // Words at 4 and 8 changed: one run crossing the 8-byte chunk
        // boundary, exercising the word-granularity fallback.
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(4, 1);
        p2.write_u32(8, 2);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d, PageDiff::create_reference(0, &t, &p2));
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 4);
        assert_eq!(d.runs[0].data.len(), 8);
    }

    #[test]
    fn tail_word_of_non_chunk_multiple_page_is_scanned() {
        // 60-byte page: seven full chunks plus one trailing word.
        let p = PageFrame::zeroed(60);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(56, 5);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d, PageDiff::create_reference(0, &t, &p2));
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 56);
        assert_eq!(d.runs[0].data.len(), 4);
    }

    #[test]
    fn pooled_create_matches_plain_create() {
        let mut pool = BufferPool::new(64);
        let p = PageFrame::zeroed(64);
        let t = Twin::of_with(&p, &mut pool);
        let mut p2 = p.clone();
        p2.write_u64(16, 77);
        p2.write_u32(40, 3);
        let plain = PageDiff::create(9, &t, &p2);
        let pooled = PageDiff::create_in(9, &t, &p2, &mut pool);
        assert_eq!(plain, pooled);
        pool.recycle_frame(t.into_frame());
        assert_eq!(pool.idle_frames(), 1);
    }

    #[test]
    fn apply_reconstructs_modified_page() {
        let base = page_with(&[(0, 11), (24, 22)], 64);
        let t = Twin::of(&base);
        let mut modified = base.clone();
        modified.write_u64(24, 99);
        modified.write_u32(40, 7);
        let d = PageDiff::create(0, &t, &modified);

        let mut rebuilt = base.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, modified);
    }

    #[test]
    fn disjoint_diffs_commute_multiple_writers() {
        // Two writers of the same page modifying disjoint words (the
        // multiple-writer, data-race-free case): applying the two diffs
        // to the home copy in either order gives the same result.
        let base = PageFrame::zeroed(64);
        let t = Twin::of(&base);

        let mut w1 = base.clone();
        w1.write_u64(0, 111);
        let d1 = PageDiff::create(0, &t, &w1);

        let mut w2 = base.clone();
        w2.write_u64(32, 222);
        let d2 = PageDiff::create(0, &t, &w2);

        let mut home_a = base.clone();
        d1.apply(&mut home_a);
        d2.apply(&mut home_a);
        let mut home_b = base.clone();
        d2.apply(&mut home_b);
        d1.apply(&mut home_b);
        assert_eq!(home_a, home_b);
        assert_eq!(home_a.read_u64(0), 111);
        assert_eq!(home_a.read_u64(32), 222);
    }

    #[test]
    fn codec_roundtrip() {
        let base = PageFrame::zeroed(128);
        let t = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(8, 1);
        m.write_u32(100, 2);
        let d = PageDiff::create(17, &t, &m);
        let bytes = d.encode_to_vec();
        assert_eq!(bytes.len(), d.encoded_size());
        assert_eq!(PageDiff::decode_from_slice(&bytes).unwrap(), d);
    }

    fn encode_runs(runs: &[(u32, &[u8])]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(0); // page
        w.put_u16(runs.len() as u16);
        for (off, data) in runs {
            w.put_u32(*off);
            w.put_bytes(data);
        }
        w.into_bytes()
    }

    #[test]
    fn decode_rejects_unaligned_offset() {
        let bytes = encode_runs(&[(2, &[1, 2, 3, 4])]);
        assert!(matches!(
            PageDiff::decode_from_slice(&bytes),
            Err(CodecError::Invalid {
                reason: "offset not word-aligned",
                ..
            })
        ));
    }

    #[test]
    fn decode_rejects_non_word_multiple_length() {
        let bytes = encode_runs(&[(0, &[1, 2, 3])]);
        assert!(matches!(
            PageDiff::decode_from_slice(&bytes),
            Err(CodecError::Invalid { .. })
        ));
        let empty = encode_runs(&[(0, &[])]);
        assert!(matches!(
            PageDiff::decode_from_slice(&empty),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn decode_rejects_overlapping_or_unordered_runs() {
        let overlap = encode_runs(&[(0, &[0; 8]), (4, &[0; 4])]);
        assert!(matches!(
            PageDiff::decode_from_slice(&overlap),
            Err(CodecError::Invalid {
                reason: "runs overlap or are out of order",
                ..
            })
        ));
        let unordered = encode_runs(&[(32, &[0; 4]), (0, &[0; 4])]);
        assert!(matches!(
            PageDiff::decode_from_slice(&unordered),
            Err(CodecError::Invalid { .. })
        ));
        // Adjacent (touching, not overlapping) runs remain decodable:
        // they cannot come from `create`, but they are applyable.
        let adjacent = encode_runs(&[(0, &[0; 4]), (4, &[0; 4])]);
        assert!(PageDiff::decode_from_slice(&adjacent).is_ok());
    }

    #[test]
    fn apply_checked_rejects_out_of_page_run() {
        let d = PageDiff {
            page: 0,
            runs: vec![DiffRun {
                offset: 60,
                data: vec![0; 8],
            }],
        };
        let mut target = PageFrame::zeroed(64);
        assert!(matches!(
            d.apply_checked(&mut target),
            Err(CodecError::Invalid {
                reason: "run extends past the end of the page",
                ..
            })
        ));
        // In-bounds diffs apply exactly like `apply`.
        let ok = PageDiff {
            page: 0,
            runs: vec![DiffRun {
                offset: 56,
                data: vec![7; 8],
            }],
        };
        ok.apply_checked(&mut target).unwrap();
        assert_eq!(target.bytes()[56], 7);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let t = Twin::of(&PageFrame::zeroed(64));
        PageDiff::create(0, &t, &PageFrame::zeroed(128));
    }
}
