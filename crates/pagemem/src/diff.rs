//! Twins and diffs: the multiple-writer write-collection machinery.
//!
//! Before the first write to a non-home page in an interval, the DSM
//! makes a *twin* (pristine copy). At the next release or barrier it
//! *diffs* the modified page against its twin — comparing 4-byte words,
//! as TreadMarks did — and ships the run-length-encoded result to the
//! page's home node, which applies it to the home copy.

use crate::addr::PageId;
use crate::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use crate::page::PageFrame;

/// Word granularity of diff comparison, in bytes.
pub const DIFF_WORD: usize = 4;

/// A pristine pre-write copy of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Twin {
    data: PageFrame,
}

impl Twin {
    /// Snapshot `page` before the first write of the interval.
    pub fn of(page: &PageFrame) -> Twin {
        Twin { data: page.clone() }
    }

    /// The pristine bytes.
    pub fn bytes(&self) -> &[u8] {
        self.data.bytes()
    }

    /// The pristine page frame.
    pub fn frame(&self) -> &PageFrame {
        &self.data
    }
}

/// One contiguous modified byte range within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset within the page (word-aligned).
    pub offset: u32,
    /// Replacement bytes (length a multiple of the diff word).
    pub data: Vec<u8>,
}

/// The encoded summary of modifications made to one page in one interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageDiff {
    /// Which shared page this diff modifies.
    pub page: PageId,
    /// Modified runs in ascending, non-overlapping offset order.
    pub runs: Vec<DiffRun>,
}

impl PageDiff {
    /// Compare `current` against its `twin` and collect modified words.
    ///
    /// # Panics
    /// Panics if the twin and page sizes differ or are not multiples of
    /// the diff word.
    pub fn create(page: PageId, twin: &Twin, current: &PageFrame) -> PageDiff {
        let old = twin.bytes();
        let new = current.bytes();
        assert_eq!(old.len(), new.len(), "twin/page size mismatch");
        assert_eq!(new.len() % DIFF_WORD, 0, "page not word-divisible");

        let mut runs = Vec::new();
        let mut run_start: Option<usize> = None;
        let words = new.len() / DIFF_WORD;
        for w in 0..words {
            let at = w * DIFF_WORD;
            let changed = old[at..at + DIFF_WORD] != new[at..at + DIFF_WORD];
            match (changed, run_start) {
                (true, None) => run_start = Some(at),
                (false, Some(start)) => {
                    runs.push(DiffRun {
                        offset: start as u32,
                        data: new[start..at].to_vec(),
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(start) = run_start {
            runs.push(DiffRun {
                offset: start as u32,
                data: new[start..].to_vec(),
            });
        }
        PageDiff { page, runs }
    }

    /// No modifications at all?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total modified bytes carried.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Apply this diff to `target` (the home copy, or a copy being
    /// reconstructed during recovery).
    ///
    /// # Panics
    /// Panics if a run falls outside the page.
    pub fn apply(&self, target: &mut PageFrame) {
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.data.len();
            target.bytes_mut()[start..end].copy_from_slice(&run.data);
        }
    }
}

impl Encode for PageDiff {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.page);
        w.put_u16(self.runs.len() as u16);
        for run in &self.runs {
            w.put_u32(run.offset);
            w.put_bytes(&run.data);
        }
    }

    fn encoded_size(&self) -> usize {
        4 + 2
            + self
                .runs
                .iter()
                .map(|r| 4 + 4 + r.data.len())
                .sum::<usize>()
    }
}

impl Decode for PageDiff {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let page = r.get_u32()?;
        let n = r.get_u16()? as usize;
        let mut runs = Vec::with_capacity(n);
        for _ in 0..n {
            let offset = r.get_u32()?;
            let data = r.get_bytes()?;
            runs.push(DiffRun { offset, data });
        }
        Ok(PageDiff { page, runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(vals: &[(usize, u64)], size: usize) -> PageFrame {
        let mut p = PageFrame::zeroed(size);
        for &(off, v) in vals {
            p.write_u64(off, v);
        }
        p
    }

    #[test]
    fn identical_pages_give_empty_diff() {
        let p = page_with(&[(0, 7)], 64);
        let t = Twin::of(&p);
        let d = PageDiff::create(3, &t, &p);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let p = page_with(&[], 64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(8, 0xFFFF_FFFF);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 4);
    }

    #[test]
    fn adjacent_words_merge_into_one_run() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u64(16, u64::MAX); // words at 16 and 20
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 16);
        assert_eq!(d.runs[0].data.len(), 8);
    }

    #[test]
    fn separated_changes_make_separate_runs() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(0, 1);
        p2.write_u32(32, 2);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].offset, 0);
        assert_eq!(d.runs[1].offset, 32);
    }

    #[test]
    fn change_at_page_end_is_captured() {
        let p = PageFrame::zeroed(64);
        let t = Twin::of(&p);
        let mut p2 = p.clone();
        p2.write_u32(60, 9);
        let d = PageDiff::create(0, &t, &p2);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].offset, 60);
    }

    #[test]
    fn apply_reconstructs_modified_page() {
        let base = page_with(&[(0, 11), (24, 22)], 64);
        let t = Twin::of(&base);
        let mut modified = base.clone();
        modified.write_u64(24, 99);
        modified.write_u32(40, 7);
        let d = PageDiff::create(0, &t, &modified);

        let mut rebuilt = base.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, modified);
    }

    #[test]
    fn disjoint_diffs_commute_multiple_writers() {
        // Two writers of the same page modifying disjoint words (the
        // multiple-writer, data-race-free case): applying the two diffs
        // to the home copy in either order gives the same result.
        let base = PageFrame::zeroed(64);
        let t = Twin::of(&base);

        let mut w1 = base.clone();
        w1.write_u64(0, 111);
        let d1 = PageDiff::create(0, &t, &w1);

        let mut w2 = base.clone();
        w2.write_u64(32, 222);
        let d2 = PageDiff::create(0, &t, &w2);

        let mut home_a = base.clone();
        d1.apply(&mut home_a);
        d2.apply(&mut home_a);
        let mut home_b = base.clone();
        d2.apply(&mut home_b);
        d1.apply(&mut home_b);
        assert_eq!(home_a, home_b);
        assert_eq!(home_a.read_u64(0), 111);
        assert_eq!(home_a.read_u64(32), 222);
    }

    #[test]
    fn codec_roundtrip() {
        let base = PageFrame::zeroed(128);
        let t = Twin::of(&base);
        let mut m = base.clone();
        m.write_u64(8, 1);
        m.write_u32(100, 2);
        let d = PageDiff::create(17, &t, &m);
        let bytes = d.encode_to_vec();
        assert_eq!(bytes.len(), d.encoded_size());
        assert_eq!(PageDiff::decode_from_slice(&bytes).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let t = Twin::of(&PageFrame::zeroed(64));
        PageDiff::create(0, &t, &PageFrame::zeroed(128));
    }
}
