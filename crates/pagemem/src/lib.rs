//! # pagemem — paged shared-memory substrate
//!
//! The memory-management layer under the home-based DSM:
//!
//! * [`PageLayout`]/[`PageId`] — the flat shared address space and its
//!   page-granular coherence units;
//! * [`PageFrame`] — the physical bytes of one page on one node;
//! * [`PageState`]/[`Access`]/[`Fault`] — the VM-protection state machine
//!   (software access checks substituting for mprotect/SIGSEGV, see
//!   DESIGN.md);
//! * [`Twin`]/[`PageDiff`] — multiple-writer write collection: pristine
//!   copies and word-granular run-length diffs;
//! * [`VClock`]/[`IntervalId`] — lazy-release-consistency interval
//!   timestamps;
//! * [`codec`] — the binary wire/log codec that makes every reported
//!   byte count real;
//! * [`BufferPool`]/[`SharedBytes`] — hot-path memory plumbing:
//!   per-node frame/buffer recycling and refcount-shared page payloads
//!   (physical optimizations only; all reported byte counts stay
//!   logical).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod bytes;
pub mod codec;
mod diff;
mod page;
mod pool;
mod protect;
mod vclock;

pub use addr::{PageId, PageLayout};
pub use bytes::SharedBytes;
pub use codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
pub use diff::{DiffRun, PageDiff, Twin, DIFF_WORD};
pub use page::PageFrame;
pub use pool::{BufferPool, PoolStats};
pub use protect::{Access, Fault, PageState};
pub use vclock::{IntervalId, VClock, VOrder};
