//! Page protection state machine.
//!
//! On the paper's testbed, coherence is driven by VM page protection:
//! `mprotect` + SIGSEGV traps. We reproduce exactly that state machine
//! in software — typed array views check the protection state on every
//! page touch and invoke the DSM fault handler where the OS would have
//! delivered a signal (the Shasta/Blizzard-S "software access check"
//! substitution documented in DESIGN.md).

/// Protection state of one cached page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageState {
    /// No valid local copy (PROT_NONE): any access faults.
    Invalid,
    /// Valid read-only copy (PROT_READ): writes fault (twin creation).
    ReadOnly,
    /// Writable copy with a twin in place (PROT_READ|PROT_WRITE).
    Writable,
}

/// The kind of access an application performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load from shared memory.
    Read,
    /// A store to shared memory.
    Write,
}

/// The fault a protection check raises, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Access to an invalid page: must fetch a fresh copy from home.
    ReadMiss,
    /// First write to a clean page: must make a twin and upgrade.
    WriteUpgrade,
    /// Write to an invalid page: fetch from home, then twin + upgrade.
    WriteMiss,
}

impl PageState {
    /// Would `access` fault in this state, and how?
    #[inline]
    pub fn fault_for(self, access: Access) -> Option<Fault> {
        match (self, access) {
            (PageState::Invalid, Access::Read) => Some(Fault::ReadMiss),
            (PageState::Invalid, Access::Write) => Some(Fault::WriteMiss),
            (PageState::ReadOnly, Access::Write) => Some(Fault::WriteUpgrade),
            (PageState::ReadOnly, Access::Read) => None,
            (PageState::Writable, _) => None,
        }
    }

    /// State after the fault handler finishes servicing `fault`.
    #[inline]
    pub fn after_fault(fault: Fault) -> PageState {
        match fault {
            Fault::ReadMiss => PageState::ReadOnly,
            Fault::WriteUpgrade | Fault::WriteMiss => PageState::Writable,
        }
    }

    /// Whether a local copy exists at all.
    #[inline]
    pub fn is_valid(self) -> bool {
        !matches!(self, PageState::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_faults_on_everything() {
        assert_eq!(
            PageState::Invalid.fault_for(Access::Read),
            Some(Fault::ReadMiss)
        );
        assert_eq!(
            PageState::Invalid.fault_for(Access::Write),
            Some(Fault::WriteMiss)
        );
    }

    #[test]
    fn read_only_faults_on_write_only() {
        assert_eq!(PageState::ReadOnly.fault_for(Access::Read), None);
        assert_eq!(
            PageState::ReadOnly.fault_for(Access::Write),
            Some(Fault::WriteUpgrade)
        );
    }

    #[test]
    fn writable_never_faults() {
        assert_eq!(PageState::Writable.fault_for(Access::Read), None);
        assert_eq!(PageState::Writable.fault_for(Access::Write), None);
    }

    #[test]
    fn fault_resolution_states() {
        assert_eq!(PageState::after_fault(Fault::ReadMiss), PageState::ReadOnly);
        assert_eq!(
            PageState::after_fault(Fault::WriteMiss),
            PageState::Writable
        );
        assert_eq!(
            PageState::after_fault(Fault::WriteUpgrade),
            PageState::Writable
        );
    }

    #[test]
    fn validity() {
        assert!(!PageState::Invalid.is_valid());
        assert!(PageState::ReadOnly.is_valid());
        assert!(PageState::Writable.is_valid());
    }
}
