//! Per-node buffer pooling for the data-movement hot path.
//!
//! Twins, fetched page copies, and diff run payloads are created and
//! dropped once per written page per interval; recycling their backing
//! stores makes steady-state intervals allocate approximately zero.
//! The pool is plain data owned by one node — no globals, no locks —
//! so determinism and per-node accounting are untouched. Pooling is a
//! *physical* optimization only: every reported byte count (wire, log)
//! is computed from logical sizes and never sees the pool.

use crate::page::PageFrame;

/// Most idle page frames retained per node. Sized generously above any
/// single node's per-interval twin churn; beyond this, frames drop back
/// to the allocator.
const MAX_FRAMES: usize = 256;

/// Most idle byte buffers (diff run payloads, encode scratch) retained.
const MAX_BUFS: usize = 256;

/// Allocation-recycling counters (diagnostic only; not part of any
/// reported experiment metric).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Frame requests served from the free list.
    pub frame_hits: u64,
    /// Frame requests that had to allocate.
    pub frame_misses: u64,
    /// Byte-buffer requests served from the free list.
    pub buf_hits: u64,
    /// Byte-buffer requests that had to allocate.
    pub buf_misses: u64,
}

/// A per-node free list of page-sized frames and small byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    page_size: usize,
    frames: Vec<Box<[u8]>>,
    bufs: Vec<Vec<u8>>,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool recycling frames of exactly `page_size` bytes.
    pub fn new(page_size: usize) -> BufferPool {
        BufferPool {
            page_size,
            frames: Vec::new(),
            bufs: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// The frame size this pool recycles.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    fn take_backing(&mut self) -> Box<[u8]> {
        match self.frames.pop() {
            Some(b) => {
                self.stats.frame_hits += 1;
                b
            }
            None => {
                self.stats.frame_misses += 1;
                vec![0u8; self.page_size].into_boxed_slice()
            }
        }
    }

    /// A frame holding a copy of `src`, backed by a recycled buffer
    /// when one is idle. Frames of a foreign size (never produced by
    /// this node's page table) fall back to a plain clone.
    pub fn frame_copy_of(&mut self, src: &PageFrame) -> PageFrame {
        if src.len() != self.page_size {
            return src.clone();
        }
        let mut b = self.take_backing();
        b.copy_from_slice(src.bytes());
        PageFrame::from_boxed(b)
    }

    /// A frame initialized from `bytes`, backed by a recycled buffer
    /// when one is idle.
    pub fn frame_from_bytes(&mut self, bytes: &[u8]) -> PageFrame {
        if bytes.len() != self.page_size {
            return PageFrame::from_bytes(bytes);
        }
        let mut b = self.take_backing();
        b.copy_from_slice(bytes);
        PageFrame::from_boxed(b)
    }

    /// Return a dead frame's backing store to the free list. Foreign
    /// sizes and overflow beyond the retention cap just drop.
    pub fn recycle_frame(&mut self, frame: PageFrame) {
        if frame.len() == self.page_size && self.frames.len() < MAX_FRAMES {
            self.frames.push(frame.into_boxed());
        }
    }

    /// An empty byte buffer with at least `capacity` spare room,
    /// recycled when possible.
    pub fn take_buf(&mut self, capacity: usize) -> Vec<u8> {
        match self.bufs.pop() {
            Some(mut b) => {
                self.stats.buf_hits += 1;
                b.clear();
                b.reserve(capacity);
                b
            }
            None => {
                self.stats.buf_misses += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a dead byte buffer to the free list. Tiny or oversized
    /// allocations are dropped rather than hoarded.
    pub fn recycle_buf(&mut self, buf: Vec<u8>) {
        let useful =
            buf.capacity() >= crate::diff::DIFF_WORD && buf.capacity() <= 2 * self.page_size;
        if useful && self.bufs.len() < MAX_BUFS {
            self.bufs.push(buf);
        }
    }

    /// Recycle every run payload of a consumed diff (typical at the
    /// home node, right after [`crate::PageDiff::apply`]).
    pub fn recycle_diff(&mut self, diff: crate::PageDiff) {
        for run in diff.runs {
            self.recycle_buf(run.data);
        }
    }

    /// Idle frames currently on the free list.
    pub fn idle_frames(&self) -> usize {
        self.frames.len()
    }

    /// Recycling counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_recycle_and_are_reused() {
        let mut pool = BufferPool::new(64);
        let src = PageFrame::from_bytes(&[7u8; 64]);
        let a = pool.frame_copy_of(&src);
        assert_eq!(a.bytes(), src.bytes());
        assert_eq!(pool.stats().frame_misses, 1);
        pool.recycle_frame(a);
        assert_eq!(pool.idle_frames(), 1);
        let b = pool.frame_from_bytes(&[9u8; 64]);
        assert_eq!(b.bytes(), &[9u8; 64]);
        assert_eq!(pool.stats().frame_hits, 1);
        assert_eq!(pool.idle_frames(), 0);
    }

    #[test]
    fn foreign_sizes_bypass_the_pool() {
        let mut pool = BufferPool::new(64);
        let odd = PageFrame::zeroed(32);
        let copy = pool.frame_copy_of(&odd);
        assert_eq!(copy.len(), 32);
        pool.recycle_frame(copy);
        assert_eq!(pool.idle_frames(), 0);
        assert_eq!(pool.frame_from_bytes(&[1, 2, 3]).len(), 3);
    }

    #[test]
    fn bufs_recycle_with_capacity_kept() {
        let mut pool = BufferPool::new(64);
        let mut b = pool.take_buf(16);
        b.extend_from_slice(&[1, 2, 3, 4]);
        let cap = b.capacity();
        pool.recycle_buf(b);
        let b2 = pool.take_buf(4);
        assert!(b2.is_empty());
        assert!(b2.capacity() >= cap.min(4));
        assert_eq!(pool.stats().buf_hits, 1);
    }

    #[test]
    fn oversized_bufs_are_dropped() {
        let mut pool = BufferPool::new(8);
        pool.recycle_buf(Vec::with_capacity(1024));
        assert!(pool.take_buf(1).capacity() < 1024);
    }
}
