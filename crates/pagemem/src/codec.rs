//! Hand-rolled binary wire/log codec.
//!
//! Everything the DSM puts on the network or into a log is encoded with
//! this codec, so the byte counts the experiments report (log sizes,
//! traffic) are the bytes a real implementation would move. Little-endian
//! fixed-width integers plus length-prefixed byte strings — the same
//! flavour of encoding TreadMarks used for its UDP messages.

use std::fmt;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the decoder needed.
    Truncated {
        /// Bytes the decoder tried to consume.
        needed: usize,
        /// Bytes actually remaining in the input.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        context: &'static str,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// A value that framed correctly but violates a structural
    /// invariant of its type (semantic validation, not framing).
    Invalid {
        /// The type being decoded or validated.
        context: &'static str,
        /// The violated invariant.
        reason: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, had {remaining}")
            }
            CodecError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::Invalid { context, reason } => {
                write!(f, "invalid {context}: {reason}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Create a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Create a writer reusing a recycled buffer: contents are cleared,
    /// the allocation is kept. The hot-path counterpart of
    /// [`ByteWriter::new`].
    pub fn from_recycled(mut buf: Vec<u8>) -> ByteWriter {
        buf.clear();
        ByteWriter { buf }
    }

    /// Reserve room for at least `additional` more bytes (pre-sizing
    /// from a direct [`Encode::encoded_size`] turns an encode into a
    /// single allocation).
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (u32) byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Raw bytes, no length prefix (fixed-size payloads like full pages).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte string (owned).
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

/// Types encodable with the wire codec.
pub trait Encode {
    /// Encode `self` onto the writer.
    fn encode(&self, w: &mut ByteWriter);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encode into a buffer pre-sized from [`Encode::encoded_size`],
    /// so the encode performs exactly one allocation. Only worthwhile
    /// on types that override `encoded_size` with a direct computation
    /// (with the measuring default this encodes twice).
    fn encode_to_sized_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size());
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encoded size in bytes (defaults to encoding and measuring;
    /// hot types override with a direct computation).
    fn encoded_size(&self) -> usize {
        self.encode_to_vec().len()
    }
}

/// Types decodable with the wire codec.
pub trait Decode: Sized {
    /// Decode one value from the reader.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Convenience: decode from a full buffer, requiring it be consumed.
    fn decode_from_slice(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(buf);
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::Truncated {
                needed: 0,
                remaining: r.remaining(),
            });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_string_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"hello");
        w.put_bytes(b"");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_bytes().unwrap(), b"");
    }

    #[test]
    fn raw_bytes() {
        let mut w = ByteWriter::new();
        w.put_raw(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_raw(3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = ByteReader::new(&[1, 2]);
        let e = r.get_u32().unwrap_err();
        assert_eq!(
            e,
            CodecError::Truncated {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn truncated_byte_string_errors() {
        let mut w = ByteWriter::new();
        w.put_u32(10); // claims 10 bytes follow
        w.put_raw(&[1, 2]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(CodecError::Truncated { .. })));
    }

    #[derive(Debug, PartialEq)]
    struct Pair(u32, u64);

    impl Encode for Pair {
        fn encode(&self, w: &mut ByteWriter) {
            w.put_u32(self.0);
            w.put_u64(self.1);
        }
    }

    impl Decode for Pair {
        fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(Pair(r.get_u32()?, r.get_u64()?))
        }
    }

    #[test]
    fn trait_roundtrip_and_size() {
        let p = Pair(5, 6);
        let bytes = p.encode_to_vec();
        assert_eq!(p.encoded_size(), 12);
        assert_eq!(Pair::decode_from_slice(&bytes).unwrap(), p);
    }

    #[test]
    fn decode_from_slice_rejects_trailing_garbage() {
        let mut bytes = Pair(5, 6).encode_to_vec();
        bytes.push(0xFF);
        assert!(Pair::decode_from_slice(&bytes).is_err());
    }
}
