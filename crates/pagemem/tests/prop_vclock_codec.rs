//! Property tests for vector clocks and the wire codec.

use pagemem::{ByteReader, ByteWriter, Decode, Encode, IntervalId, VClock, VOrder};
use proptest::prelude::*;

fn vclock(n: usize) -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..1000, n).prop_map(|v| {
        let mut c = VClock::new(v.len());
        for (i, x) in v.into_iter().enumerate() {
            c.set(i as u32, x);
        }
        c
    })
}

proptest! {
    /// join is the least upper bound: commutative, idempotent, and
    /// dominating both inputs.
    #[test]
    fn join_is_lub(a in vclock(6), b in vclock(6)) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(a.dominated_by(&ab));
        prop_assert!(b.dominated_by(&ab));
        let mut again = ab.clone();
        again.join(&a);
        prop_assert_eq!(again, ab);
    }

    /// compare is antisymmetric and consistent with dominated_by.
    #[test]
    fn compare_consistency(a in vclock(5), b in vclock(5)) {
        match a.compare(&b) {
            VOrder::Equal => {
                prop_assert_eq!(b.compare(&a), VOrder::Equal);
                prop_assert!(a.dominated_by(&b) && b.dominated_by(&a));
            }
            VOrder::Before => {
                prop_assert_eq!(b.compare(&a), VOrder::After);
                prop_assert!(a.dominated_by(&b));
                prop_assert!(!b.dominated_by(&a));
            }
            VOrder::After => {
                prop_assert_eq!(b.compare(&a), VOrder::Before);
                prop_assert!(b.dominated_by(&a));
            }
            VOrder::Concurrent => {
                prop_assert_eq!(b.compare(&a), VOrder::Concurrent);
                prop_assert!(!a.dominated_by(&b) && !b.dominated_by(&a));
            }
        }
    }

    /// observe() makes covers() true and is the minimal such update.
    #[test]
    fn observe_covers(mut a in vclock(4), node in 0u32..4, seq in 0u32..100) {
        let before = a.get(node);
        let iv = IntervalId { node, seq };
        a.observe(iv);
        prop_assert!(a.covers(iv));
        prop_assert_eq!(a.get(node), before.max(seq + 1));
    }

    /// VClock and IntervalId codec roundtrips.
    #[test]
    fn vclock_codec_roundtrip(a in vclock(8)) {
        let bytes = a.encode_to_vec();
        prop_assert_eq!(bytes.len(), a.encoded_size());
        prop_assert_eq!(VClock::decode_from_slice(&bytes).unwrap(), a);
    }

    #[test]
    fn interval_codec_roundtrip(node in any::<u32>(), seq in any::<u32>()) {
        let iv = IntervalId { node, seq };
        prop_assert_eq!(IntervalId::decode_from_slice(&iv.encode_to_vec()).unwrap(), iv);
    }

    /// Mixed scalar/byte-string sequences roundtrip through the codec.
    #[test]
    fn writer_reader_roundtrip(
        items in proptest::collection::vec(
            prop_oneof![
                any::<u8>().prop_map(|v| (0u8, v as u64)),
                any::<u16>().prop_map(|v| (1u8, v as u64)),
                any::<u32>().prop_map(|v| (2u8, v as u64)),
                any::<u64>().prop_map(|v| (3u8, v)),
            ],
            0..50,
        ),
        tail in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut w = ByteWriter::new();
        for &(kind, v) in &items {
            match kind {
                0 => w.put_u8(v as u8),
                1 => w.put_u16(v as u16),
                2 => w.put_u32(v as u32),
                _ => w.put_u64(v),
            }
        }
        w.put_bytes(&tail);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for &(kind, v) in &items {
            let got = match kind {
                0 => r.get_u8().unwrap() as u64,
                1 => r.get_u16().unwrap() as u64,
                2 => r.get_u32().unwrap() as u64,
                _ => r.get_u64().unwrap(),
            };
            prop_assert_eq!(got, v);
        }
        prop_assert_eq!(r.get_bytes().unwrap(), tail);
        prop_assert!(r.is_exhausted());
    }
}
