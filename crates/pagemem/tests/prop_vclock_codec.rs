//! Property tests for vector clocks and the wire codec.

use minicheck::{check, Rng};
use pagemem::{ByteReader, ByteWriter, Decode, Encode, IntervalId, VClock, VOrder};

const CASES: u64 = 256;

fn vclock(rng: &mut Rng, n: usize) -> VClock {
    let mut c = VClock::new(n);
    for i in 0..n {
        c.set(i as u32, rng.u32_in(0, 1000));
    }
    c
}

/// join is the least upper bound: commutative, idempotent, and
/// dominating both inputs.
#[test]
fn join_is_lub() {
    check("join_is_lub", CASES, |rng| {
        let a = vclock(rng, 6);
        let b = vclock(rng, 6);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        assert_eq!(&ab, &ba);
        assert!(a.dominated_by(&ab));
        assert!(b.dominated_by(&ab));
        let mut again = ab.clone();
        again.join(&a);
        assert_eq!(again, ab);
    });
}

/// compare is antisymmetric and consistent with dominated_by.
#[test]
fn compare_consistency() {
    check("compare_consistency", CASES, |rng| {
        // Small component range so every ordering actually occurs.
        let mut a = VClock::new(5);
        let mut b = VClock::new(5);
        for i in 0..5 {
            a.set(i, rng.u32_in(0, 4));
            b.set(i, rng.u32_in(0, 4));
        }
        match a.compare(&b) {
            VOrder::Equal => {
                assert_eq!(b.compare(&a), VOrder::Equal);
                assert!(a.dominated_by(&b) && b.dominated_by(&a));
            }
            VOrder::Before => {
                assert_eq!(b.compare(&a), VOrder::After);
                assert!(a.dominated_by(&b));
                assert!(!b.dominated_by(&a));
            }
            VOrder::After => {
                assert_eq!(b.compare(&a), VOrder::Before);
                assert!(b.dominated_by(&a));
            }
            VOrder::Concurrent => {
                assert_eq!(b.compare(&a), VOrder::Concurrent);
                assert!(!a.dominated_by(&b) && !b.dominated_by(&a));
            }
        }
    });
}

/// observe() makes covers() true and is the minimal such update.
#[test]
fn observe_covers() {
    check("observe_covers", CASES, |rng| {
        let mut a = vclock(rng, 4);
        let node = rng.u32_in(0, 4);
        let seq = rng.u32_in(0, 100);
        let before = a.get(node);
        let iv = IntervalId { node, seq };
        a.observe(iv);
        assert!(a.covers(iv));
        assert_eq!(a.get(node), before.max(seq + 1));
    });
}

/// VClock and IntervalId codec roundtrips.
#[test]
fn vclock_codec_roundtrip() {
    check("vclock_codec_roundtrip", CASES, |rng| {
        let a = vclock(rng, 8);
        let bytes = a.encode_to_vec();
        assert_eq!(bytes.len(), a.encoded_size());
        assert_eq!(VClock::decode_from_slice(&bytes).unwrap(), a);
    });
}

#[test]
fn interval_codec_roundtrip() {
    check("interval_codec_roundtrip", CASES, |rng| {
        let iv = IntervalId {
            node: rng.next_u64() as u32,
            seq: rng.next_u64() as u32,
        };
        assert_eq!(
            IntervalId::decode_from_slice(&iv.encode_to_vec()).unwrap(),
            iv
        );
    });
}

/// Mixed scalar/byte-string sequences roundtrip through the codec.
#[test]
fn writer_reader_roundtrip() {
    check("writer_reader_roundtrip", CASES, |rng| {
        let n_items = rng.usize_in(0, 50);
        let items: Vec<(u8, u64)> = (0..n_items)
            .map(|_| {
                let kind = rng.u32_in(0, 4) as u8;
                let v = rng.next_u64();
                let v = match kind {
                    0 => v & 0xFF,
                    1 => v & 0xFFFF,
                    2 => v & 0xFFFF_FFFF,
                    _ => v,
                };
                (kind, v)
            })
            .collect();
        let tail_len = rng.usize_in(0, 100);
        let tail = rng.bytes(tail_len);

        let mut w = ByteWriter::new();
        for &(kind, v) in &items {
            match kind {
                0 => w.put_u8(v as u8),
                1 => w.put_u16(v as u16),
                2 => w.put_u32(v as u32),
                _ => w.put_u64(v),
            }
        }
        w.put_bytes(&tail);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for &(kind, v) in &items {
            let got = match kind {
                0 => r.get_u8().unwrap() as u64,
                1 => r.get_u16().unwrap() as u64,
                2 => r.get_u32().unwrap() as u64,
                _ => r.get_u64().unwrap(),
            };
            assert_eq!(got, v);
        }
        assert_eq!(r.get_bytes().unwrap(), tail);
        assert!(r.is_exhausted());
    });
}
