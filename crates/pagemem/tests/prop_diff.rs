//! Property tests for the twin/diff machinery — the invariants the whole
//! coherence and recovery stack leans on.

use minicheck::{check, Rng};
use pagemem::{BufferPool, Decode, Encode, PageDiff, PageFrame, Twin, DIFF_WORD};

const PAGE: usize = 256;
const CASES: u64 = 128;

/// A page plus an arbitrary set of word-aligned mutations.
fn page_and_edits(rng: &mut Rng) -> (Vec<u8>, Vec<(usize, [u8; 4])>) {
    let base = rng.bytes(PAGE);
    let n_edits = rng.usize_in(0, 32);
    let edits = (0..n_edits)
        .map(|_| {
            let word = rng.usize_in(0, PAGE / DIFF_WORD);
            let mut data = [0u8; 4];
            for b in &mut data {
                *b = rng.byte();
            }
            (word * DIFF_WORD, data)
        })
        .collect();
    (base, edits)
}

fn apply_edits(base: &[u8], edits: &[(usize, [u8; 4])]) -> PageFrame {
    let mut p = PageFrame::from_bytes(base);
    for (off, bytes) in edits {
        p.bytes_mut()[*off..*off + 4].copy_from_slice(bytes);
    }
    p
}

/// diff(twin, current) applied to a copy of the twin reproduces
/// `current` exactly — the correctness core of diff-based write
/// propagation and of log-based recovery.
#[test]
fn diff_apply_reconstructs() {
    check("diff_apply_reconstructs", CASES, |rng| {
        let (base, edits) = page_and_edits(rng);
        let twin_frame = PageFrame::from_bytes(&base);
        let twin = Twin::of(&twin_frame);
        let current = apply_edits(&base, &edits);
        let diff = PageDiff::create(0, &twin, &current);

        let mut rebuilt = twin_frame.clone();
        diff.apply(&mut rebuilt);
        assert_eq!(rebuilt, current);
    });
}

/// The diff never carries more payload than the page and captures
/// no runs when nothing changed.
#[test]
fn diff_is_minimal() {
    check("diff_is_minimal", CASES, |rng| {
        let (base, edits) = page_and_edits(rng);
        let twin_frame = PageFrame::from_bytes(&base);
        let twin = Twin::of(&twin_frame);
        let current = apply_edits(&base, &edits);
        let diff = PageDiff::create(0, &twin, &current);

        assert!(diff.payload_bytes() <= PAGE);
        if current.bytes() == twin.bytes() {
            assert!(diff.is_empty());
        }
        // Each changed word must be covered by exactly one run; runs are
        // sorted, non-overlapping, word-aligned.
        let mut last_end = 0usize;
        for run in &diff.runs {
            assert_eq!(run.offset as usize % DIFF_WORD, 0);
            assert_eq!(run.data.len() % DIFF_WORD, 0);
            assert!(run.offset as usize >= last_end);
            last_end = run.offset as usize + run.data.len();
            assert!(last_end <= PAGE);
        }
    });
}

/// Wire-codec roundtrip is lossless and `encoded_size` is exact.
#[test]
fn diff_codec_roundtrip() {
    check("diff_codec_roundtrip", CASES, |rng| {
        let (base, edits) = page_and_edits(rng);
        let twin_frame = PageFrame::from_bytes(&base);
        let twin = Twin::of(&twin_frame);
        let current = apply_edits(&base, &edits);
        let diff = PageDiff::create(9, &twin, &current);

        let bytes = diff.encode_to_vec();
        assert_eq!(bytes.len(), diff.encoded_size());
        let back = PageDiff::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, diff);
    });
}

/// Applying a diff twice is idempotent (recovery may replay).
#[test]
fn diff_apply_idempotent() {
    check("diff_apply_idempotent", CASES, |rng| {
        let (base, edits) = page_and_edits(rng);
        let twin_frame = PageFrame::from_bytes(&base);
        let twin = Twin::of(&twin_frame);
        let current = apply_edits(&base, &edits);
        let diff = PageDiff::create(0, &twin, &current);

        let mut once = twin_frame.clone();
        diff.apply(&mut once);
        let mut twice = once.clone();
        diff.apply(&mut twice);
        assert_eq!(once, twice);
    });
}

/// The chunked scan kernel is an exact drop-in for the retained naive
/// reference: byte-identical runs, offsets, and encoding across random
/// page sizes and change densities (including dense, sparse, silent,
/// chunk-straddling, and tail-word cases). The reported diff byte
/// counts of every experiment rest on this equivalence.
#[test]
fn chunked_kernel_matches_reference() {
    check("chunked_kernel_matches_reference", CASES * 4, |rng| {
        // Page sizes sweep word-but-not-chunk multiples (4 mod 8) as
        // well as chunk multiples, down to degenerate 4-byte pages.
        let size = DIFF_WORD * rng.usize_in(1, 128);
        let base = rng.bytes(size);
        let mut current = PageFrame::from_bytes(&base);
        // Change density from 0% to ~100%.
        let density = rng.usize_in(0, 101);
        for w in 0..size / DIFF_WORD {
            if rng.usize_in(0, 100) < density {
                let mut word = [0u8; 4];
                for b in &mut word {
                    *b = rng.byte();
                }
                current.bytes_mut()[w * DIFF_WORD..(w + 1) * DIFF_WORD].copy_from_slice(&word);
            }
        }
        let twin = Twin::of(&PageFrame::from_bytes(&base));
        let fast = PageDiff::create(7, &twin, &current);
        let reference = PageDiff::create_reference(7, &twin, &current);
        assert_eq!(fast, reference, "size={size} density={density}");
        assert_eq!(fast.encode_to_vec(), reference.encode_to_vec());

        // The pooled entry point is equivalent too, warm or cold.
        let mut pool = BufferPool::new(size);
        let pooled_cold = PageDiff::create_in(7, &twin, &current, &mut pool);
        pool.recycle_diff(pooled_cold);
        let pooled_warm = PageDiff::create_in(7, &twin, &current, &mut pool);
        assert_eq!(pooled_warm, reference);
    });
}

/// Diffs from writers that touched disjoint words commute on the
/// home copy (the multiple-writer protocol's soundness condition
/// for data-race-free programs).
#[test]
fn disjoint_diffs_commute() {
    check("disjoint_diffs_commute", CASES, |rng| {
        let base = rng.bytes(PAGE);
        let n_words = rng.usize_in(0, 24);
        let mut words: Vec<usize> = (0..n_words)
            .map(|_| rng.usize_in(0, PAGE / DIFF_WORD))
            .collect();
        words.sort_unstable();
        words.dedup();
        let mut bytes = [0u8; 4];
        for b in &mut bytes {
            *b = rng.byte();
        }

        let (w1, w2) = words.split_at(words.len() / 2);
        let twin_frame = PageFrame::from_bytes(&base);
        let twin = Twin::of(&twin_frame);

        let m1 = apply_edits(
            &base,
            &w1.iter().map(|&w| (w * 4, bytes)).collect::<Vec<_>>(),
        );
        let m2 = apply_edits(
            &base,
            &w2.iter().map(|&w| (w * 4, bytes)).collect::<Vec<_>>(),
        );
        let d1 = PageDiff::create(0, &twin, &m1);
        let d2 = PageDiff::create(0, &twin, &m2);

        let mut ab = twin_frame.clone();
        d1.apply(&mut ab);
        d2.apply(&mut ab);
        let mut ba = twin_frame.clone();
        d2.apply(&mut ba);
        d1.apply(&mut ba);
        assert_eq!(ab, ba);
    });
}
