#!/usr/bin/env bash
# Run the hot-path wall-clock benchmark and refresh BENCH_hotpath.json
# at the repo root.
#
# Usage:
#   scripts/bench.sh          # full run (paper-scale apps, ~minutes)
#   HOTPATH_SMOKE=1 scripts/bench.sh   # tiny smoke run (seconds)
#
# The emitted JSON carries both the live numbers and a static `pre_pr`
# block (the seed's numbers on the same machine) so the speedup from
# the zero-copy overhaul stays reviewable.
set -euo pipefail
cd "$(dirname "$0")/.."

export HOTPATH_JSON="${HOTPATH_JSON:-$PWD/BENCH_hotpath.json}"
cargo bench -p ccl-bench --bench hotpath
echo "bench written to $HOTPATH_JSON"
