#!/usr/bin/env bash
# Run the hot-path wall-clock benchmark and refresh BENCH_hotpath.json
# at the repo root.
#
# Usage:
#   scripts/bench.sh          # full run (paper-scale apps, ~minutes)
#   HOTPATH_SMOKE=1 scripts/bench.sh   # tiny smoke run (seconds)
#
# The emitted JSON carries both the live numbers and a static `pre_pr`
# block (the seed's numbers on the same machine) so the speedup from
# the zero-copy overhaul stays reviewable.
set -euo pipefail
cd "$(dirname "$0")/.."

export HOTPATH_JSON="${HOTPATH_JSON:-$PWD/BENCH_hotpath.json}"
cargo bench -p ccl-bench --bench hotpath
echo "bench written to $HOTPATH_JSON"

# Histogram summary: the phases bench emits one JSON object per run
# (tiny sizes) whose `hist` block carries the cluster-merged log-binned
# histograms; condense them into one table.
echo
echo "hot-path distribution summary (tiny runs; ns for latencies, bytes otherwise)"
cargo bench -p ccl-bench --bench phases 2>/dev/null | python3 -c '
import json, sys
print("%-18s%-22s%7s%12s%12s%12s" % ("run", "metric", "count", "p50", "p99", "max"))
for line in sys.stdin:
    line = line.strip()
    if not line.startswith("{"):
        continue
    d = json.loads(line)
    for metric, h in d["hist"].items():
        if h["count"] == 0:
            continue
        print("%-18s%-22s%7d%12d%12d%12d"
              % (d["run"], metric, h["count"], h["p50"], h["p99"], h["max"]))
'
