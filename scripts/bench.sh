#!/usr/bin/env bash
# Run the wall-clock benchmarks and refresh BENCH_hotpath.json,
# BENCH_sched.json and BENCH_fetch.json at the repo root.
#
# Usage:
#   scripts/bench.sh                   # full run (paper-scale apps, ~minutes)
#   HOTPATH_SMOKE=1 SCHED_SMOKE=1 FETCH_SMOKE=1 scripts/bench.sh   # tiny smoke run (seconds)
#   scripts/bench.sh --compare         # full run, then regression gate
#   scripts/bench.sh --compare-only    # gate the committed JSON, no benching
#
# Each emitted JSON carries both the live numbers and a static `pre_pr`
# block (the pre-PR numbers on the same machine) so the zero-copy and
# sharded-scheduler wins stay reviewable.
#
# The --compare gate fails (exit non-zero) when any app x protocol
# wall-clock cell — or any sched scale cell — regresses more than 25%
# against the `pre_pr` block inside the same file, so a future PR
# cannot silently eat those wins. --compare-only applies the same gate
# to the committed BENCH_*.json without rerunning anything; the verify
# gate uses it as its smoke variant.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-run}"

# Gate one BENCH_*.json: every wall-clock cell must be within 1.25x of
# the corresponding `pre_pr` cell. Micro-throughput rows are reported
# but not gated (GB/s numbers swing more with machine load than the
# multi-hundred-ms wall cells do).
compare_one() {
    python3 - "$1" <<'PYEOF'
import json, sys

path = sys.argv[1]
d = json.load(open(path))
pre = d.get("pre_pr")
if pre is None:
    sys.exit(f"{path}: no pre_pr block to compare against")

LIMIT = 1.25
bad = []

def gate(kind, key, live_ms, pre_ms):
    ratio = live_ms / pre_ms if pre_ms > 0 else 0.0
    flag = "REGRESSION" if ratio > LIMIT else "ok"
    print(f"  {kind:<6} {key:<16} {pre_ms:>9.1f} ms -> {live_ms:>9.1f} ms"
          f"  ({ratio:5.2f}x) {flag}")
    if ratio > LIMIT:
        bad.append((kind, key))

print(f"{path}: wall-clock vs pre_pr (fail above {LIMIT}x)")
pre_apps = {(a["app"], a["protocol"]): a for a in pre.get("apps", [])}
for a in d.get("apps", []):
    k = (a["app"], a["protocol"])
    if k in pre_apps:
        gate("app", f"{k[0]}/{k[1]}", a["wall_ms"], pre_apps[k]["wall_ms"])
pre_scale = {s["nodes"]: s for s in pre.get("scale", [])}
for s in d.get("scale", []):
    if s["nodes"] in pre_scale:
        gate("scale", f"{s['nodes']}n", s["wall_ms"],
             pre_scale[s["nodes"]]["wall_ms"])

if bad:
    sys.exit(f"{path}: {len(bad)} cell(s) regressed >25% vs pre_pr: {bad}")
print(f"{path}: OK")
PYEOF
}

# Gate the fetch-hiding win itself: BENCH_fetch.json's live rows must
# show prefetch-on virtual execution at least 10% below prefetch-off
# for the None and CCL protocols (the PR's headline claim). Virtual
# time is deterministic, so this gate has no machine-load slack — a
# predictor regression fails it exactly.
fetch_win_gate() {
    python3 - "$1" <<'PYEOF'
import json, sys

path = sys.argv[1]
d = json.load(open(path))
if d.get("smoke"):
    print(f"{path}: smoke-scale, win gate skipped")
    sys.exit(0)
rows = {a["protocol"]: a["exec_ns"] for a in d.get("apps", [])}
bad = []
for proto in ("none", "ccl"):
    off, on = rows.get(f"{proto}-off"), rows.get(f"{proto}-on")
    if off is None or on is None:
        bad.append((proto, "missing rows"))
        continue
    win = 100.0 * (1.0 - on / off)
    flag = "ok" if on <= 0.9 * off else "TOO SMALL"
    print(f"  fetch-hiding win {proto:<5} {off} ns -> {on} ns ({win:+.1f}%) {flag}")
    if on > 0.9 * off:
        bad.append((proto, f"{win:+.1f}%"))
if bad:
    sys.exit(f"{path}: fetch-hiding win below 10%: {bad}")
print(f"{path}: OK")
PYEOF
}

# Wall cost of the blame analysis itself (the full smoke matrix: 12
# protocol runs + 8 crash runs, each analyzed and the document
# byte-compared against its baseline). Blame is observability — it
# must stay cheap enough to run on every verify — so its wall cost
# sits under the same regression gate as the hot paths. Best of three
# to keep a ~tens-of-ms cell stable under host load.
bench_blame() {
    local out="$1"
    cargo build --release -q -p obsv --bin blame
    local best=""
    for _ in 1 2 3; do
        local t0 t1 ms
        t0=$(date +%s%N)
        ./target/release/blame --smoke >/dev/null
        t1=$(date +%s%N)
        ms=$(((t1 - t0) / 1000000))
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best=$ms; fi
    done
    python3 - "$out" "$best" <<'PYEOF'
import json, os, sys
path, ms = sys.argv[1], int(sys.argv[2])
cell = {"app": "blame-analysis", "protocol": "smoke", "wall_ms": ms}
pre = None
if os.path.exists(path):
    pre = json.load(open(path)).get("pre_pr")
if pre is None:
    pre = {"apps": [dict(cell)], "scale": []}
doc = {"bench": "blame", "apps": [cell], "scale": [], "pre_pr": pre}
json.dump(doc, open(path, "w"), indent=1)
print(f"blame analysis: {ms} ms (best of 3) -> {path}")
PYEOF
}

if [ "$MODE" = "--compare-only" ]; then
    compare_one BENCH_hotpath.json
    compare_one BENCH_sched.json
    compare_one BENCH_blame.json
    compare_one BENCH_fetch.json
    fetch_win_gate BENCH_fetch.json
    exit 0
fi

export HOTPATH_JSON="${HOTPATH_JSON:-$PWD/BENCH_hotpath.json}"
cargo bench -p ccl-bench --bench hotpath
echo "bench written to $HOTPATH_JSON"

export SCHED_JSON="${SCHED_JSON:-$PWD/BENCH_sched.json}"
cargo bench -p ccl-bench --bench sched
echo "bench written to $SCHED_JSON"

export FETCH_JSON="${FETCH_JSON:-$PWD/BENCH_fetch.json}"
cargo bench -p ccl-bench --bench fetch
echo "bench written to $FETCH_JSON"

BLAME_JSON="${BLAME_JSON:-$PWD/BENCH_blame.json}"
bench_blame "$BLAME_JSON"

if [ "$MODE" = "--compare" ]; then
    # Smoke runs use tiny workloads whose wall times are not comparable
    # to the full-scale pre_pr block; gating them would be vacuous.
    if [ -n "${HOTPATH_SMOKE:-}" ] || [ -n "${SCHED_SMOKE:-}" ] || [ -n "${FETCH_SMOKE:-}" ]; then
        echo "--compare skipped: smoke-scale numbers are not comparable to pre_pr" >&2
        exit 1
    fi
    compare_one "$HOTPATH_JSON"
    compare_one "$SCHED_JSON"
    compare_one "$BLAME_JSON"
    compare_one "$FETCH_JSON"
    fetch_win_gate "$FETCH_JSON"
fi

# Histogram summary: the phases bench emits one JSON object per run
# (tiny sizes) whose `hist` block carries the cluster-merged log-binned
# histograms; condense them into one table.
echo
echo "hot-path distribution summary (tiny runs; ns for latencies, bytes otherwise)"
cargo bench -p ccl-bench --bench phases 2>/dev/null | python3 -c '
import json, sys
print("%-18s%-22s%7s%12s%12s%12s" % ("run", "metric", "count", "p50", "p99", "max"))
for line in sys.stdin:
    line = line.strip()
    if not line.startswith("{"):
        continue
    d = json.loads(line)
    for metric, h in d["hist"].items():
        if h["count"] == 0:
            continue
        print("%-18s%-22s%7d%12d%12d%12d"
              % (d["run"], metric, h["count"], h["p50"], h["p99"], h["max"]))
'
