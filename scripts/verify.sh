#!/usr/bin/env sh
# Full verification gate: build, tests, lints, formatting.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (2 seeded fault schedules per app/protocol)"
CHAOS_SCHEDULES=2 cargo test -q --test chaos

echo "==> checkpoint-cadence smoke (bounded logs, torn-crash restart, device-full resume)"
cargo test -q --test checkpoint_cadence

echo "==> determinism gate (every app x protocol twice same-seed, byte-compared)"
# Runs every app x {None, ML, CCL} twice with identical specs and
# requires byte-identical phases_json plus equal full trace
# fingerprints (MsgSend/MsgRecv included), then replays the chaos
# matrix once (two fixed schedules, with crashes for ML/CCL) under the
# same comparison. No tolerances anywhere.
./target/release/detcheck --chaos 2

echo "==> scale tests, release, timed (64- and 128-node liveness under a wall ceiling)"
# A generous ceiling: post-sharding the whole file runs in a few
# seconds in release, so 180 s only trips on a gross scheduler perf
# regression (the pre-shard fabric needed ~7.6 s per 128-node run) or
# an outright deadlock the 60 s watchdog somehow missed.
scale_t0=$(date +%s)
timeout 180 cargo test -q --release --test scale
echo "scale tests: OK ($(( $(date +%s) - scale_t0 )) s, ceiling 180 s)"

echo "==> bench smoke (hotpath, tiny sizes)"
HOTPATH_SMOKE=1 HOTPATH_JSON="$PWD/target/BENCH_hotpath.smoke.json" \
    cargo bench -p ccl-bench --bench hotpath >/dev/null
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['bench']=='hotpath' and d['micro'] and d['apps'] and d['pre_pr']" \
    "$PWD/target/BENCH_hotpath.smoke.json"
echo "bench smoke: OK (target/BENCH_hotpath.smoke.json well-formed)"

echo "==> bench smoke (sched, tiny sizes)"
SCHED_SMOKE=1 SCHED_JSON="$PWD/target/BENCH_sched.smoke.json" \
    cargo bench -p ccl-bench --bench sched >/dev/null
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['bench']=='sched' and d['micro'] and d['scale'] and d['apps'] and d['pre_pr']" \
    "$PWD/target/BENCH_sched.smoke.json"
echo "bench smoke: OK (target/BENCH_sched.smoke.json well-formed)"

echo "==> bench smoke (fetch, tiny sizes)"
FETCH_SMOKE=1 FETCH_JSON="$PWD/target/BENCH_fetch.smoke.json" \
    cargo bench -p ccl-bench --bench fetch >/dev/null
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['bench']=='fetch' and d['smoke'] and d['apps'] and d['pre_pr']" \
    "$PWD/target/BENCH_fetch.smoke.json"
echo "bench smoke: OK (target/BENCH_fetch.smoke.json well-formed)"

echo "==> bench regression gate (committed BENCH_*.json vs their pre_pr blocks)"
./scripts/bench.sh --compare-only

echo "==> report smoke (obsv pipeline: tiny matrix, schema check, drift gate)"
./target/release/report --smoke --out "$PWD/target/report_smoke.json" >/dev/null
python3 - "$PWD/target/report_smoke.json" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "ccl-report/v1" and d["scale"] == "smoke", "bad header"
apps = d["apps"]
assert set(apps) == {"3D-FFT", "MG", "Shallow", "Water"}, sorted(apps)
for name, a in apps.items():
    runs = a["runs"]
    assert set(runs) == {"none", "ml", "ccl"}, (name, sorted(runs))
    assert len({r["digest"] for r in runs.values()}) == 1, f"{name}: protocols disagree"
    assert runs["none"]["log_bytes"] == 0, name
    assert 0 < runs["ccl"]["log_bytes"] < runs["ml"]["log_bytes"], f"{name}: CCL log not smaller"
    for proto, r in runs.items():
        assert r["trace_dropped"] == 0, (name, proto)
        h = r["hist"]["fetch_latency_ns"]
        assert h["min"] <= h["p50"] <= h["p99"] <= h["max"], (name, proto, h)
    assert a["recovery"]["ml_ns"] > 0 and a["recovery"]["ccl_ns"] > 0, name
print("report smoke: OK (schema valid, CCL < ML log everywhere, drift gate passed)")
PYEOF

echo "==> blame smoke (causal blame engine: tiny matrix + crash runs, baseline byte-compare)"
# The binary itself hard-checks the exactness invariants per run
# (blame path sums to exec_ns, log attribution sums to log_bytes, no
# dropped trace events) and byte-compares the full document against
# the committed crates/obsv/blame_baseline.json — any drift is a
# non-zero exit. The python pass re-checks the written document from
# the outside so a silent writer bug can't pass the gate.
./target/release/blame --smoke --out "$PWD/target/blame_smoke.json" >/dev/null
python3 - "$PWD/target/blame_smoke.json" <<'PYEOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "ccl-blame/v1" and d["scale"] == "smoke", "bad header"
runs = d["runs"]
apps = ("3D-FFT", "MG", "Shallow", "Water")
want = {f"{a}/{p}" for a in apps for p in ("none", "ml", "ccl")}
want |= {f"{a}/{p}/crash" for a in apps for p in ("ml", "ccl")}
assert set(runs) == want, sorted(set(runs) ^ want)
for label, r in runs.items():
    cp = r["critical_path"]
    assert cp["sum_ns"] == r["exec_ns"], f"{label}: path is not a partition"
    span = sum(s["end_ns"] - s["start_ns"] for s in cp["path"])
    assert span == r["exec_ns"], f"{label}: segment durations disagree"
    lb = r["log_bytes"]
    parts = lb["page"] + lb["lock"] + lb["barrier"] + lb["meta"]
    assert parts == lb["flushed_total"], f"{label}: log split leaks bytes"
    if label.endswith("/none"):
        assert lb["flushed_total"] == 0, f"{label}: None logged bytes"
    if label.endswith("/crash"):
        assert r["recovery"], f"{label}: crash run has no recovery window"
print("blame smoke: OK (schema valid, exact partitions, baseline byte-identical)")
PYEOF

echo "==> fetch-hiding blame gate (committed REPORT_paper.json)"
# Before the batched-prefetch path landed, 3D-FFT — the most
# remote-data-bound application — spent 56.8% of its CCL blame path
# waiting on page fetches (58.3% under None). The fetch-hiding
# machinery (DESIGN.md §15) must keep that share strictly below the
# pre-PR value: if a predictor or batching regression creeps in, the
# share climbs back toward stop-and-wait levels and this gate fails.
python3 - "$PWD/REPORT_paper.json" <<'PYEOF'
import json, sys
PRE_PR = {"none": 0.583, "ccl": 0.568}
d = json.load(open(sys.argv[1]))
for proto, pre in PRE_PR.items():
    b = d["apps"]["3D-FFT"]["runs"][proto]["blame"]
    path = (b["cp_compute_ns"] + b["cp_recovery_ns"] + b["cp_wait_page_ns"]
            + b["cp_wait_lock_ns"] + b["cp_wait_barrier_ns"] + b["cp_wait_flush_ns"])
    share = b["cp_wait_page_ns"] / path
    assert share < pre, \
        f"3D-FFT/{proto}: page-wait blame share {share:.3f} not below pre-PR {pre}"
    print(f"3D-FFT/{proto}: page-wait share {share:.3f} < pre-PR {pre} OK")
PYEOF

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
