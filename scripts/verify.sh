#!/usr/bin/env sh
# Full verification gate: build, tests, lints, formatting.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
