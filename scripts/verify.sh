#!/usr/bin/env sh
# Full verification gate: build, tests, lints, formatting.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (2 seeded fault schedules per app/protocol)"
CHAOS_SCHEDULES=2 cargo test -q --test chaos

echo "==> bench smoke (hotpath, tiny sizes)"
HOTPATH_SMOKE=1 HOTPATH_JSON="$PWD/target/BENCH_hotpath.smoke.json" \
    cargo bench -p ccl-bench --bench hotpath >/dev/null
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['bench']=='hotpath' and d['micro'] and d['apps'] and d['pre_pr']" \
    "$PWD/target/BENCH_hotpath.smoke.json"
echo "bench smoke: OK (target/BENCH_hotpath.smoke.json well-formed)"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
