#!/usr/bin/env sh
# Full verification gate: build, tests, lints, formatting.
# Run from the repository root: ./scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> chaos smoke (2 seeded fault schedules per app/protocol)"
CHAOS_SCHEDULES=2 cargo test -q --test chaos

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
