//! The paper's Figure 1, as an executable test.
//!
//! Three processes; pages x, y, z homed at P1, P2, P3 respectively.
//!
//! Failure-free part (Figure 1a):
//!   * P1 acquires the lock (interval A), writes x, y, z, releases:
//!     it flushes diff(y) to P2 and diff(z) to P3 and logs both; P2 and
//!     P3 apply the incoming diffs and record the update events.
//!   * P2 then acquires the lock (interval B), gets the invalidation
//!     notices for x and z, writes z and x (faulting and fetching both),
//!     reads y (no fault: home copy), releases: flushes diff(x) to P1
//!     and diff(z) to P3, logging them.
//!
//! Crash part (Figure 1b): P2 crashes right after its logs are flushed;
//! its recovery replays the logged notices (invalidate x, z), re-fetches
//! the data it originally fetched, and the final memory state matches
//! the failure-free run exactly.

use ccl_core::{run_program, ClusterSpec, CrashPlan, Dsm, Protocol};

const PAGE: usize = 256;
const LOCK: u32 = 1; // managed by P1 (lock % 3)

fn figure1_program(dsm: &mut Dsm) -> (u64, u64, u64) {
    // One page each, homed at P1, P2, P3 (paper: x@P1, y@P2, z@P3).
    let x = dsm.alloc_at::<u64>(8, 0);
    let y = dsm.alloc_at::<u64>(8, 1);
    let z = dsm.alloc_at::<u64>(8, 2);
    dsm.barrier();

    // Interval A at P1: w(x) w(y) w(z) under the lock.
    if dsm.me() == 0 {
        dsm.acquire(LOCK);
        dsm.write(&x, 0, 11); // home write: no fault, no diff
        dsm.write(&y, 0, 22); // remote: twin + diff(y) -> P2 at release
        dsm.write(&z, 0, 33); // remote: twin + diff(z) -> P3 at release
        dsm.release(LOCK);
    }
    dsm.barrier();

    // Interval B at P2: inva(x,z) arrives with the grant; w(z) w(x)
    // fault and fetch; r(y) takes no fault (home copy always valid).
    if dsm.me() == 1 {
        dsm.acquire(LOCK);
        let y0 = dsm.read(&y, 0); // home read, no fault
        assert_eq!(y0, 22, "P2 must see P1's update to its home page y");
        dsm.write(&z, 0, 330); // fetch z from P3, then twin
        dsm.write(&x, 0, 110); // fetch x from P1, then twin
        dsm.release(LOCK);
    }
    dsm.barrier();

    // Everyone reads the final state.
    let fx = dsm.read(&x, 0);
    let fy = dsm.read(&y, 0);
    let fz = dsm.read(&z, 0);
    dsm.barrier();
    (fx, fy, fz)
}

fn spec(protocol: Protocol) -> ClusterSpec {
    ClusterSpec::new(3, 4)
        .with_page_size(PAGE)
        .with_protocol(protocol)
}

#[test]
fn figure1a_failure_free_flow() {
    let out = run_program(spec(Protocol::Ccl), figure1_program);
    // Final state visible identically everywhere.
    for n in &out.nodes {
        assert_eq!(n.result, (110, 22, 330));
    }
    // P1 flushed diffs for y and z (interval A), P2 for x and z
    // (interval B): two diffs each.
    assert_eq!(out.nodes[0].stats.diffs_created, 2, "P1: diff(y), diff(z)");
    assert_eq!(out.nodes[1].stats.diffs_created, 2, "P2: diff(x), diff(z)");
    assert_eq!(out.nodes[2].stats.diffs_created, 0, "P3 wrote nothing");
    // P2 fetched exactly x and z in interval B (y is its home copy);
    // the final read round re-fetches pages updated since (x at P1/P3's
    // readers etc.), so check the interval-B behaviour via P3 instead:
    // P3 never acquired the lock and only fetched at the final read.
    assert!(out.nodes[1].stats.page_fetches >= 2);
    // Both loggers flushed something.
    assert!(out.nodes[0].stats.log_bytes > 0);
    assert!(out.nodes[1].stats.log_bytes > 0);
}

#[test]
fn figure1b_crash_of_p2_and_recovery() {
    // P2 crashes after the barrier that follows its interval B — its
    // volatile state is gone, its logs survive. Recovery must replay
    // intervals A-wait and B from the log and reproduce the exact
    // failure-free state.
    let clean = run_program(spec(Protocol::Ccl), figure1_program);
    let crash = run_program(
        spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 3)),
        figure1_program,
    );
    for (c, k) in clean.nodes.iter().zip(&crash.nodes) {
        assert_eq!(c.result, k.result, "node {} state diverged", c.node);
    }
    let p2 = &crash.nodes[1];
    assert!(p2.crashed_at.is_some());
    assert!(p2.recovery_exit.is_some());
}

#[test]
fn figure1_under_ml_matches_ccl() {
    let ccl = run_program(spec(Protocol::Ccl), figure1_program);
    let ml = run_program(spec(Protocol::Ml), figure1_program);
    assert_eq!(ccl.nodes[0].result, ml.nodes[0].result);
    // The log-size relationship of the example: ML logged the fetched
    // page copies (full pages), CCL only diffs/notices/records.
    assert!(ml.total_log_bytes() > ccl.total_log_bytes());
}

#[test]
fn figure1b_crash_of_p3_the_quiet_home() {
    // Variant: crash the process that only serves as a home (P3 does no
    // locked writes). Its home copy of z must be rebuilt from the
    // logged update records + the writers' logged diffs.
    let clean = run_program(spec(Protocol::Ccl), figure1_program);
    let crash = run_program(
        spec(Protocol::Ccl).with_crash(CrashPlan::new(2, 3)),
        figure1_program,
    );
    for (c, k) in clean.nodes.iter().zip(&crash.nodes) {
        assert_eq!(c.result, k.result, "node {} state diverged", c.node);
    }
}
