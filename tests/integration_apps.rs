//! Cross-crate integration: the four paper applications run on the DSM
//! cluster and must produce *bit-identical* results to their serial
//! references, on every node, under every logging protocol.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol};

fn tiny_spec(app: App, nodes: usize, protocol: Protocol) -> ClusterSpec {
    let page = 256;
    ClusterSpec::new(nodes, app.tiny_pages(page) + 4)
        .with_page_size(page)
        .with_protocol(protocol)
}

fn check_app(app: App, nodes: usize, protocol: Protocol) {
    let expect = app.tiny_reference();
    let out = run_program(tiny_spec(app, nodes, protocol), move |dsm| {
        app.run_tiny(dsm)
    });
    for n in &out.nodes {
        assert_eq!(
            n.result,
            expect,
            "{} with {:?} on {} nodes: node {} digest mismatch",
            app.name(),
            protocol,
            nodes,
            n.node
        );
    }
}

#[test]
fn fft3d_matches_reference_no_logging() {
    check_app(App::Fft3d, 4, Protocol::None);
}

#[test]
fn mg_matches_reference_no_logging() {
    check_app(App::Mg, 4, Protocol::None);
}

#[test]
fn shallow_matches_reference_no_logging() {
    check_app(App::Shallow, 4, Protocol::None);
}

#[test]
fn water_matches_reference_no_logging() {
    check_app(App::Water, 4, Protocol::None);
}

#[test]
fn all_apps_match_reference_under_ml() {
    for app in App::ALL {
        check_app(app, 4, Protocol::Ml);
    }
}

#[test]
fn all_apps_match_reference_under_ccl() {
    for app in App::ALL {
        check_app(app, 4, Protocol::Ccl);
    }
}

#[test]
fn apps_scale_to_eight_nodes() {
    for app in App::ALL {
        check_app(app, 8, Protocol::Ccl);
    }
}

#[test]
fn apps_run_on_two_nodes() {
    for app in App::ALL {
        check_app(app, 2, Protocol::Ml);
    }
}

#[test]
fn logging_never_changes_results() {
    // The same program must produce the same digest regardless of the
    // logging protocol (logging is supposed to be transparent).
    for app in App::ALL {
        let digests: Vec<u64> = [
            Protocol::None,
            Protocol::Ml,
            Protocol::Ccl,
            Protocol::CclNoOverlap,
        ]
        .iter()
        .map(|&p| run_program(tiny_spec(app, 4, p), move |dsm| app.run_tiny(dsm)).nodes[0].result)
        .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{}: digests differ across protocols: {digests:?}",
            app.name()
        );
    }
}

#[test]
fn single_node_degenerate_cluster_matches() {
    // A one-node "cluster" exercises the degenerate protocol paths
    // (every page home-local, manager talking to itself).
    for app in App::ALL {
        check_app(app, 1, Protocol::Ccl);
    }
}
