//! Logging-protocol integration: the failure-free properties Table 2
//! rests on — log contents, sizes, flush counts, and the CCL overlap —
//! measured on real application workloads.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

fn run_app(app: App, protocol: Protocol) -> RunOutput<u64> {
    let page = 256;
    let spec = ClusterSpec::new(4, app.tiny_pages(page) + 4)
        .with_page_size(page)
        .with_protocol(protocol);
    run_program(spec, move |dsm| app.run_tiny(dsm))
}

#[test]
fn ccl_log_is_fraction_of_ml_log() {
    // The paper's headline log-size result: CCL's total log is a small
    // fraction of ML's (4.5%-12.5% on the paper's workloads; we only
    // require a clear separation at test scale).
    for app in App::ALL {
        let ml = run_app(app, Protocol::Ml);
        let ccl = run_app(app, Protocol::Ccl);
        let ratio = ccl.total_log_bytes() as f64 / ml.total_log_bytes() as f64;
        assert!(
            ratio < 0.6,
            "{}: CCL/ML log ratio {ratio:.3} not clearly below 1 \
             (ccl={} ml={})",
            app.name(),
            ccl.total_log_bytes(),
            ml.total_log_bytes()
        );
    }
}

#[test]
fn ml_mean_flush_is_larger_than_ccl() {
    for app in [App::Fft3d, App::Shallow] {
        let ml = run_app(app, Protocol::Ml);
        let ccl = run_app(app, Protocol::Ccl);
        assert!(
            ml.mean_log_bytes() > ccl.mean_log_bytes(),
            "{}: ML mean flush {} <= CCL mean flush {}",
            app.name(),
            ml.mean_log_bytes(),
            ccl.mean_log_bytes()
        );
    }
}

#[test]
fn no_logging_baseline_is_fastest() {
    // The ordering None <= CCL <= ML holds strictly for both the
    // barrier-only workload (MG) and the lock-based one (Water): under
    // the conservative virtual-time scheduler (DESIGN.md §12) lock
    // grants are a pure function of virtual request-arrival time, so
    // Water's contended acquisition order — and with it its execution
    // time — is exactly reproducible and the ~1% protocol deltas are
    // no longer swamped by scheduling noise. (This test carried a 1.25
    // tolerance factor on Water before the scheduler landed.)
    for app in [App::Mg, App::Water] {
        let none = run_app(app, Protocol::None);
        let ml = run_app(app, Protocol::Ml);
        let ccl = run_app(app, Protocol::Ccl);
        assert!(
            none.exec_time() <= ccl.exec_time(),
            "{}: none {} above ccl {}",
            app.name(),
            none.exec_time(),
            ccl.exec_time()
        );
        assert!(
            ccl.exec_time() <= ml.exec_time(),
            "{}: ccl {} above ml {}",
            app.name(),
            ccl.exec_time(),
            ml.exec_time()
        );
    }
}

#[test]
fn overlap_hides_ccl_disk_time() {
    // With overlap, part of CCL's disk time disappears behind the diff
    // round-trips; without it, everything lands on the critical path.
    let app = App::Fft3d;
    let with = run_app(app, Protocol::Ccl);
    let without = run_app(app, Protocol::CclNoOverlap);
    let hidden = with.total_stats().disk_time_overlapped;
    assert!(hidden.as_nanos() > 0, "no disk time was overlapped at all");
    assert!(
        with.exec_time() <= without.exec_time(),
        "overlap must not slow execution down"
    );
    // Identical log contents either way.
    assert_eq!(with.total_log_bytes(), without.total_log_bytes());
}

#[test]
fn log_flushes_track_synchronization() {
    // Every node flushes at most a few times per synchronization event;
    // flush counts must be nonzero for both protocols and of the same
    // order as the barrier count.
    let app = App::Shallow;
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let out = run_app(app, protocol);
        let total = out.total_stats();
        assert!(total.log_flushes > 0);
        let barriers = total.barriers;
        assert!(
            total.log_flushes <= 3 * barriers + total.lock_acquires,
            "{protocol:?}: {} flushes vs {} barriers",
            total.log_flushes,
            barriers
        );
    }
}

#[test]
fn disk_counters_match_logged_bytes() {
    let app = App::Mg;
    let out = run_app(app, Protocol::Ccl);
    for node in &out.nodes {
        assert!(
            node.disk.bytes_written >= node.stats.log_bytes,
            "disk wrote less than the log claims"
        );
        assert_eq!(node.disk.reads, 0, "no recovery => no disk reads");
    }
}

#[test]
fn water_locks_generate_lock_traffic_in_logs() {
    // Water (locks + barriers) must log lock-grant records under ML.
    let out = run_app(App::Water, Protocol::Ml);
    let total = out.total_stats();
    assert!(total.lock_acquires > 0, "water must use locks");
    assert!(total.log_bytes > 0);
}

#[test]
fn related_work_protocols_log_but_cannot_recover() {
    // §5 of the paper: the home-less-DSM logging protocols produce
    // small logs, but those logs cannot rebuild a home-based memory
    // image. We check both halves: log sizes sit between None and ML,
    // and attempting recovery is a hard error rather than silent
    // corruption.
    let app = App::Shallow;
    let ml = run_app(app, Protocol::Ml);
    for p in [Protocol::RecordsOnly, Protocol::Rsl] {
        let out = run_app(app, p);
        assert!(out.total_log_bytes() > 0, "{p:?} must log something");
        assert!(
            out.total_log_bytes() < ml.total_log_bytes(),
            "{p:?} log should be smaller than ML's"
        );
        // Results unaffected by the logging protocol.
        assert_eq!(out.nodes[0].result, ml.nodes[0].result);
    }
}

#[test]
fn related_work_recovery_is_rejected() {
    // A crash under records-only/RSL must fail loudly (unimplemented),
    // not silently produce a wrong memory image. Single-node cluster so
    // the panic propagates cleanly out of the runner.
    for p in [Protocol::RecordsOnly, Protocol::Rsl] {
        let spec = ClusterSpec::new(1, 4)
            .with_page_size(256)
            .with_protocol(p)
            .with_crash(ccl_core::CrashPlan::new(0, 1));
        let res = std::panic::catch_unwind(|| {
            run_program(spec, |dsm| {
                let a = dsm.alloc::<u64>(4);
                dsm.write(&a, 0, 1);
                dsm.barrier(); // crash fires here; recovery must refuse
                dsm.read(&a, 0)
            })
        });
        assert!(res.is_err(), "{p:?} recovery must be rejected");
    }
}
