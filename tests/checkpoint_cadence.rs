//! Cadence-driven coordinated checkpointing: `ClusterSpec`'s
//! `checkpoint_every_barriers` knob must keep the on-disk log bounded,
//! survive crashes (including a torn mid-flush tail) by restarting from
//! the latest cadence cut, and turn the deterministic `LogDeviceFull`
//! condition into a graceful pause that the next checkpoint's log
//! truncation un-wedges.

use ccl_core::{
    run_program, ClusterSpec, CrashPlan, DiskFaultPlan, Dsm, Protocol, RunOutput, TraceKind,
};

const NODES: u64 = 3;
const STRIPE: u64 = 16;
const ROUNDS: u64 = 24;

fn spec(protocol: Protocol) -> ClusterSpec {
    ClusterSpec::new(NODES as usize, 24)
        .with_page_size(256)
        .with_protocol(protocol)
}

/// An iterative kernel sized so every round writes a full stripe and
/// reads across stripes (coherence traffic → log growth every round).
/// It publishes its restart point before every barrier, so a cadence
/// checkpoint taken at any barrier resumes at the right round.
fn program(dsm: &mut Dsm) -> u64 {
    let a = dsm.alloc_blocked::<u64>((NODES * STRIPE) as usize);
    let me = dsm.me() as u64;
    let start = match dsm.restored_state() {
        Some(blob) => u64::from_le_bytes(blob.try_into().expect("8-byte blob")),
        None => 0,
    };
    for round in start..ROUNDS {
        for i in 0..STRIPE {
            let idx = (me * STRIPE + i) as usize;
            let v = dsm.read(&a, idx);
            dsm.write(&a, idx, v + 1);
        }
        // Cross-stripe read forces coherence traffic (and CCL records).
        let _ = dsm.read(&a, (((me + 1) % NODES) * STRIPE) as usize);
        dsm.set_checkpoint_state(&(round + 1).to_le_bytes());
        dsm.barrier();
    }
    (0..(NODES * STRIPE) as usize)
        .map(|i| dsm.read(&a, i))
        .sum()
}

fn expected() -> u64 {
    NODES * STRIPE * ROUNDS
}

fn assert_correct(label: &str, out: &RunOutput<u64>) {
    assert!(
        out.nodes.iter().all(|n| n.result == expected()),
        "{label}: results {:?}, expected {}",
        out.nodes.iter().map(|n| n.result).collect::<Vec<_>>(),
        expected()
    );
}

/// The headline property: with a cadence, every checkpoint truncates the
/// ML/CCL log, so the bytes resident on disk at the end of the run stay
/// a small fraction of the full (never-truncated) log.
#[test]
fn cadence_bounds_resident_log_bytes() {
    for p in [Protocol::Ml, Protocol::Ccl] {
        let unbounded = run_program(spec(p), program);
        let bounded = run_program(spec(p).with_checkpoint_cadence(5), program);
        assert_correct("unbounded", &unbounded);
        assert_correct("bounded", &bounded);
        let full: u64 = unbounded.nodes.iter().map(|n| n.log_bytes_on_disk).sum();
        let resident: u64 = bounded.nodes.iter().map(|n| n.log_bytes_on_disk).sum();
        // Cadence 5 over 24 barriers: only the post-barrier-20 suffix is
        // still resident — well under half of the full log.
        assert!(
            resident * 2 < full,
            "{p:?}: cadence left {resident} bytes resident vs {full} untruncated"
        );
        assert!(full > 0, "{p:?}: workload generated no log traffic");
    }
}

/// Crashing after a cadence cut restarts from the checkpoint blob and
/// replays only the post-checkpoint log — even when the crash lands
/// mid-flush and tears the final record batch.
#[test]
fn cadence_checkpoint_survives_torn_crash() {
    for p in [Protocol::Ml, Protocol::Ccl] {
        let out = run_program(
            spec(p)
                .with_checkpoint_cadence(5)
                .with_crash(CrashPlan::new(1, 17).with_torn_tail(0xCAD_E17)),
            program,
        );
        assert_correct("cadence+torn crash", &out);
        assert!(out.recovery_time().is_some(), "{p:?}: no recovery happened");
        // The restart fast-forwarded: node 1 re-executed from round 15
        // (the barrier-15 cut), not from round 0.
        let replayed = out.nodes[1]
            .trace
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::RecoveryBegin));
        assert!(replayed, "{p:?}: node 1 never entered recovery");
    }
}

/// A capacity-bounded log device fills mid-run: logging pauses (traced
/// as `LogDeviceFull`, never an error) and the application still
/// finishes with the right answer. With a cadence, the next checkpoint's
/// truncation frees the space and logging resumes — the run ends with
/// live bytes back on disk.
#[test]
fn log_device_full_pauses_then_cadence_resumes() {
    let p = Protocol::Ml; // the by-far largest log; fills a real capacity
    let baseline = run_program(spec(p), program);
    assert_correct("baseline", &baseline);
    let peak = baseline
        .nodes
        .iter()
        .map(|n| n.log_bytes_on_disk)
        .max()
        .unwrap();
    assert!(peak > 0);
    let cap = peak / 2;
    let full_trace = |out: &RunOutput<u64>| {
        out.nodes[1]
            .trace
            .iter()
            .any(|ev| matches!(ev.kind, TraceKind::LogDeviceFull))
    };

    // Without a cadence the device wedges at the cap and stays paused:
    // a graceful degradation, not a failure.
    let wedged = run_program(
        spec(p).with_disk_fault(1, DiskFaultPlan::none().with_capacity(cap)),
        program,
    );
    assert_correct("wedged", &wedged);
    assert!(full_trace(&wedged), "capacity bound never hit");
    assert!(
        wedged.nodes[1].log_bytes_on_disk <= cap,
        "paused device kept writing past its capacity"
    );

    // With a long cadence the device still fills mid-interval, but the
    // barrier-16 checkpoint truncates the log, clears the pause, and
    // the remaining rounds log normally.
    let resumed = run_program(
        spec(p)
            .with_checkpoint_cadence(16)
            .with_disk_fault(1, DiskFaultPlan::none().with_capacity(cap)),
        program,
    );
    assert_correct("resumed", &resumed);
    assert!(full_trace(&resumed), "cadence run never hit the capacity");
    assert!(
        resumed.nodes[1].log_bytes_on_disk > 0,
        "logging never resumed after the cadence truncation"
    );
}
