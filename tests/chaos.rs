//! Chaos harness: the applications must produce their exact fault-free
//! digests under randomized-but-seeded fault schedules — message drops,
//! duplicates, delivery jitter, link partitions, disk write faults, and
//! multi-crash recovery.
//!
//! Schedules are drawn from `minicheck` streams, so every failure
//! reports a seed that reproduces the exact schedule via
//! `minicheck::check_seed`. The number of random schedules per property
//! is `CHAOS_SCHEDULES` (default 8); `scripts/verify.sh` runs a bounded
//! smoke pass with a smaller value.

use std::cell::Cell;

use ccl_apps::App;
use ccl_core::{
    run_program, ClusterSpec, CrashPlan, DiskFaultPlan, FaultPlan, Partition, Protocol, RunOutput,
    SimDuration, SimTime, TraceKind,
};
use minicheck::{check, Rng};

const NODES: usize = 4;

fn schedules() -> u64 {
    std::env::var("CHAOS_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn tiny_spec(app: App, protocol: Protocol) -> ClusterSpec {
    let page = 256;
    ClusterSpec::new(NODES, app.tiny_pages(page) + 4)
        .with_page_size(page)
        .with_protocol(protocol)
}

/// A randomized message-fault schedule: at least 1% drop probability,
/// duplication, jitter, and (half the time) one link-partition window
/// early in the run.
fn random_faults(rng: &mut Rng) -> FaultPlan {
    let drop = rng.u32_in(10, 60) as u16; // 1.0% .. 6.0% per transmission
    let dup = rng.u32_in(10, 40) as u16;
    let mut plan = FaultPlan::lossy(rng.next_u64(), drop, dup);
    if rng.bool() {
        let a = rng.usize_in(0, NODES);
        let b = (a + rng.usize_in(1, NODES)) % NODES;
        let from = SimTime(rng.u64_in(100_000, 2_000_000));
        let until = from + SimDuration::from_micros(rng.u64_in(100, 1_000));
        plan = plan.with_partition(Partition { a, b, from, until });
    }
    plan
}

/// Run `app` under `spec` and assert every node returns the serial
/// reference digest **and** balances its phase accounting: every clock
/// advance is charged to exactly one of compute/wait/disk/hidden, so
/// the four must sum to the node's finish time under any fault
/// schedule. Failures name the fault seed for reproduction.
fn run_and_check(app: App, spec: ClusterSpec) -> RunOutput<u64> {
    let protocol = spec.protocol;
    let seed = spec.faults.seed;
    let expect = app.tiny_reference();
    let out = run_program(spec, move |dsm| app.run_tiny(dsm));
    for n in &out.nodes {
        assert_eq!(
            n.result,
            expect,
            "{} under {:?} diverged on node {} (fault seed {seed:#018x})",
            app.name(),
            protocol,
            n.node
        );
        assert_eq!(
            n.phases.total().as_nanos(),
            n.finish.as_nanos(),
            "{} under {:?}: node {} phase accounting leaks \
             (fault seed {seed:#018x}): {:?} vs finish {:?}",
            app.name(),
            protocol,
            n.node,
            n.phases,
            n.finish
        );
    }
    out
}

/// Like [`run_and_check`] but without the digest assertion: for fault
/// classes where mid-history state is genuinely unrecoverable (e.g.
/// bit rot landing in the middle of a log), the contract is completion
/// and honest accounting, not exact convergence.
fn run_and_complete(app: App, spec: ClusterSpec) -> RunOutput<u64> {
    let protocol = spec.protocol;
    let seed = spec.faults.seed;
    let out = run_program(spec, move |dsm| app.run_tiny(dsm));
    for n in &out.nodes {
        assert_eq!(
            n.phases.total().as_nanos(),
            n.finish.as_nanos(),
            "{} under {:?}: node {} phase accounting leaks \
             (fault seed {seed:#018x}): {:?} vs finish {:?}",
            app.name(),
            protocol,
            n.node,
            n.phases,
            n.finish
        );
    }
    out
}

fn count_recoveries(out: &RunOutput<u64>) -> usize {
    out.nodes
        .iter()
        .map(|n| {
            n.trace
                .iter()
                .filter(|ev| matches!(ev.kind, TraceKind::RecoveryBegin))
                .count()
        })
        .sum()
}

// ------------------------------------------------------------
// Message-fault schedules: every app x protocol
// ------------------------------------------------------------

/// Each random schedule perturbs the network; digests must not move.
/// Across the whole schedule set the reliable layer must actually have
/// fired (retransmissions, suppressed duplicates, or timeouts) — a plan
/// that never perturbs anything would make the property vacuous.
fn message_chaos(protocol: Protocol) {
    for app in App::ALL {
        let perturbed = Cell::new(0u64);
        let name = format!("chaos-msg-{}-{}", app.name(), protocol.label());
        check(&name, schedules(), |rng| {
            let spec = tiny_spec(app, protocol).with_faults(random_faults(rng));
            let out = run_and_check(app, spec);
            let t = out.total_stats();
            perturbed.set(perturbed.get() + t.retransmits + t.dups_suppressed + t.timeouts);
        });
        assert!(
            perturbed.get() > 0,
            "{name}: no schedule perturbed a single message"
        );
    }
}

#[test]
fn message_faults_preserve_digests_none() {
    message_chaos(Protocol::None);
}

#[test]
fn message_faults_preserve_digests_ml() {
    message_chaos(Protocol::Ml);
}

#[test]
fn message_faults_preserve_digests_ccl() {
    message_chaos(Protocol::Ccl);
}

/// With the default fault-free plan the transport must stay untouched:
/// two runs are cycle-identical and no reliable-layer counter moves.
#[test]
fn fault_free_plan_leaves_runs_untouched() {
    let app = App::Fft3d;
    for protocol in Protocol::TABLE2 {
        let a = run_and_check(app, tiny_spec(app, protocol));
        let b = run_and_check(app, tiny_spec(app, protocol));
        assert_eq!(
            a.exec_time(),
            b.exec_time(),
            "{:?}: fault-free runs must be cycle-identical",
            protocol
        );
        let t = a.total_stats();
        assert_eq!(
            t.retransmits + t.dups_suppressed + t.timeouts,
            0,
            "{protocol:?}: fault machinery fired without a fault plan"
        );
    }
}

// ------------------------------------------------------------
// Phase accounting across the whole matrix
// ------------------------------------------------------------

/// The observability invariant, exhaustively: for every application,
/// every Table 2 protocol, and two fault schedules (clean, and a lossy
/// network — plus a crash where a recovery protocol can replay), each
/// node's compute + wait + disk + hidden time equals its finish time.
/// `run_and_check` asserts the balance per node, so this test is the
/// matrix driver; the randomized chaos properties above re-check it on
/// every schedule they draw.
#[test]
fn phase_accounting_balances_across_the_matrix() {
    for app in App::ALL {
        for protocol in Protocol::TABLE2 {
            run_and_check(app, tiny_spec(app, protocol));
            let mut faulty =
                tiny_spec(app, protocol).with_faults(FaultPlan::lossy(0xFA57_AC1D, 15, 10));
            if protocol != Protocol::None {
                faulty = faulty.with_crash(CrashPlan::new(1, 3));
            }
            run_and_check(app, faulty);
        }
    }
}

// ------------------------------------------------------------
// Crashes under a lossy network, and multi-crash schedules
// ------------------------------------------------------------

/// A crash plus a lossy network at once: recovery replays from the log
/// while the reliable layer keeps repairing live traffic.
#[test]
fn crash_recovery_survives_lossy_network() {
    let app = App::Shallow;
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let spec = tiny_spec(app, protocol)
            .with_faults(FaultPlan::lossy(0xC0FFEE, 20, 10))
            .with_crash(CrashPlan::new(1, 3));
        let out = run_and_check(app, spec);
        assert!(out.recovery_time().is_some(), "{protocol:?}: no recovery");
        assert!(out.total_stats().retransmits > 0);
    }
}

fn two_crashes(protocol: Protocol, first: CrashPlan, second: CrashPlan) {
    let app = App::Fft3d;
    let spec = tiny_spec(app, protocol)
        .with_crash(first)
        .with_crash(second);
    let out = run_and_check(app, spec);
    assert_eq!(
        count_recoveries(&out),
        2,
        "{protocol:?}: expected two recoveries for {first:?} + {second:?}"
    );
}

#[test]
fn sequential_crashes_of_distinct_nodes_ml() {
    two_crashes(Protocol::Ml, CrashPlan::new(1, 2), CrashPlan::new(2, 4));
}

#[test]
fn sequential_crashes_of_distinct_nodes_ccl() {
    two_crashes(Protocol::Ccl, CrashPlan::new(1, 2), CrashPlan::new(2, 4));
}

/// Both nodes fail at the same barrier: their recoveries overlap, and
/// each must serve the other's recovery fetches while replaying.
#[test]
fn overlapping_crashes_ml() {
    two_crashes(Protocol::Ml, CrashPlan::new(1, 3), CrashPlan::new(2, 3));
}

#[test]
fn overlapping_crashes_ccl() {
    two_crashes(Protocol::Ccl, CrashPlan::new(1, 3), CrashPlan::new(2, 3));
}

/// The same node fails again after its first recovery completed
/// (`after_barriers` counts within the re-run incarnation).
#[test]
fn same_node_crashes_twice_ml() {
    two_crashes(Protocol::Ml, CrashPlan::new(1, 2), CrashPlan::new(1, 4));
}

#[test]
fn same_node_crashes_twice_ccl() {
    two_crashes(Protocol::Ccl, CrashPlan::new(1, 2), CrashPlan::new(1, 4));
}

// ------------------------------------------------------------
// Disk-fault schedules
// ------------------------------------------------------------

/// Transient write faults cost retries (time), never correctness.
#[test]
fn transient_disk_faults_only_cost_time() {
    let app = App::Fft3d;
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let spec =
            tiny_spec(app, protocol).with_disk_fault(1, DiskFaultPlan::transient(0xD15C, 400));
        let out = run_and_check(app, spec);
        assert!(
            out.nodes[1].disk.write_retries > 0,
            "{protocol:?}: the transient fault schedule never fired"
        );
        assert!(out.degraded_nodes().is_empty());
    }
}

/// A permanently failed log device stops logging at that node (traced
/// as degraded) but the run still completes with correct digests.
#[test]
fn permanent_disk_failure_degrades_but_completes() {
    let app = App::Fft3d;
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let spec = tiny_spec(app, protocol).with_disk_fault(1, DiskFaultPlan::permanent_at(2));
        let out = run_and_check(app, spec);
        assert_eq!(
            out.degraded_nodes(),
            vec![1],
            "{protocol:?}: node 1's device failure was not reported"
        );
        assert!(out.nodes[1].disk.failed_writes > 0);
    }
}

/// The worst case: the log device dies, then the node crashes. Recovery
/// replays the persisted prefix and re-executes the tail live instead of
/// wedging, reporting itself as degraded. Node 1 only reads the shared
/// counter, so its re-executed tail is side-effect free and the final
/// digests stay exact.
#[test]
fn crash_after_log_device_failure_runs_degraded_recovery() {
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let spec = ClusterSpec::new(3, 12)
            .with_page_size(256)
            .with_protocol(protocol)
            .with_disk_fault(1, DiskFaultPlan::permanent_at(1))
            .with_crash(CrashPlan::new(1, 4));
        let out = run_program(spec, |dsm| {
            let xs = dsm.alloc::<u64>(8);
            for _round in 0..6 {
                if dsm.me() == 0 {
                    let v = dsm.read(&xs, 0);
                    dsm.write(&xs, 0, v + 1);
                }
                dsm.barrier();
            }
            dsm.read(&xs, 0)
        });
        for n in &out.nodes {
            assert_eq!(n.result, 6, "{protocol:?}: degraded recovery diverged");
        }
        assert_eq!(out.degraded_nodes(), vec![1]);
        let failed = &out.nodes[1];
        assert!(
            failed
                .trace
                .iter()
                .any(|ev| matches!(ev.kind, TraceKind::RecoveryDegraded)),
            "{protocol:?}: degraded recovery was not traced"
        );
        assert!(out.recovery_time().is_some());
    }
}

// ------------------------------------------------------------
// Crash-consistent storage: torn tails and bit rot
// ------------------------------------------------------------

/// The crash lands mid-flush on every application under both recovery
/// protocols: the last flushed log batch is torn at a seeded point
/// (truncated on even seeds, bit-garbled on odd ones). Recovery must
/// salvage the valid prefix, re-execute the lost tail live, and land on
/// the exact fault-free digest — never panic, never a wrong result.
#[test]
fn mid_flush_torn_crash_matrix() {
    let mut seed = 0xD15C_7EA5_u64;
    for app in App::ALL {
        for protocol in [Protocol::Ml, Protocol::Ccl] {
            seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let crash = if seed.is_multiple_of(2) {
                CrashPlan::new(1, 3).with_torn_tail(seed)
            } else {
                CrashPlan::new(1, 3).with_garbled_tail(seed)
            };
            let out = run_and_check(app, tiny_spec(app, protocol).with_crash(crash));
            assert!(
                out.recovery_time().is_some(),
                "{} under {protocol:?}: torn-tail crash did not recover",
                app.name()
            );
        }
    }
}

/// Latent bit rot on top of a crash: records rot (deterministically,
/// per seed) as they are written and the damage surfaces as CRC
/// mismatches when the recovery scan reads the log back. Rot can land
/// *anywhere* in the log — salvage then cuts the stream mid-history,
/// and unlike the torn-tail case the lost span may include state no
/// surviving copy can reconstruct — so the guarantee here is detection
/// plus completion: recovery never panics, never wedges, and every
/// node's phase accounting still balances. (Tail-only damage keeps the
/// exact-digest guarantee; that is `mid_flush_torn_crash_matrix`.)
#[test]
fn bit_rot_surfaces_at_recovery_and_completes() {
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let app = App::Fft3d;
        let spec = tiny_spec(app, protocol)
            .with_disk_fault(1, DiskFaultPlan::bit_rot(0xB17_207, 500))
            .with_crash(CrashPlan::new(1, 3));
        let out = run_and_complete(app, spec);
        assert!(
            out.nodes[1].disk.corrupted_records > 0,
            "{protocol:?}: the bit-rot schedule never fired"
        );
        assert!(
            out.nodes[1]
                .trace
                .iter()
                .any(|ev| matches!(ev.kind, TraceKind::CrcMismatch { .. })),
            "{protocol:?}: rot was written but recovery never detected it"
        );
        assert!(out.recovery_time().is_some());
    }
}

// ------------------------------------------------------------
// Combined random schedules (ML/CCL): message + disk faults
// ------------------------------------------------------------

/// The full mix: every random schedule carries message faults, and some
/// draw a transient disk-fault schedule on top.
fn combined_chaos(protocol: Protocol) {
    for app in [App::Fft3d, App::Shallow] {
        let name = format!("chaos-mixed-{}-{}", app.name(), protocol.label());
        check(&name, schedules(), |rng| {
            let mut spec = tiny_spec(app, protocol).with_faults(random_faults(rng));
            if rng.bool() {
                let node = rng.usize_in(0, NODES);
                let per_mille = rng.u32_in(100, 500) as u16;
                spec =
                    spec.with_disk_fault(node, DiskFaultPlan::transient(rng.next_u64(), per_mille));
            }
            run_and_check(app, spec);
        });
    }
}

#[test]
fn mixed_message_and_disk_chaos_ml() {
    combined_chaos(Protocol::Ml);
}

#[test]
fn mixed_message_and_disk_chaos_ccl() {
    combined_chaos(Protocol::Ccl);
}
