//! Cross-crate coherence integration through the public API: sharing
//! patterns the applications rely on, exercised directly.

use ccl_core::{run_program, ClusterSpec, Protocol};

fn spec(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(nodes, 32).with_page_size(256)
}

#[test]
fn single_writer_many_readers() {
    let out = run_program(spec(4), |dsm| {
        let a = dsm.alloc_blocked::<f64>(64);
        if dsm.me() == 0 {
            for i in 0..64 {
                dsm.write(&a, i, i as f64 * 1.5);
            }
        }
        dsm.barrier();
        let mut sum = 0.0;
        for i in 0..64 {
            sum += dsm.read(&a, i);
        }
        sum
    });
    let expect: f64 = (0..64).map(|i| i as f64 * 1.5).sum();
    assert!(out.nodes.iter().all(|n| n.result == expect));
}

#[test]
fn false_sharing_multiple_writers_one_page() {
    // All four nodes write disjoint elements of the SAME page every
    // round: the multiple-writer protocol must merge all diffs at the
    // home without losing any.
    let out = run_program(spec(4), |dsm| {
        let a = dsm.alloc::<u64>(32); // one 256-byte page
        let me = dsm.me();
        for round in 1..=5u64 {
            for i in 0..8 {
                dsm.write(&a, me * 8 + i, round * 100 + (me * 8 + i) as u64);
            }
            dsm.barrier();
            // verify the full page every round
            for j in 0..32 {
                assert_eq!(dsm.read(&a, j), round * 100 + j as u64, "round {round}");
            }
            dsm.barrier();
        }
        true
    });
    assert!(out.nodes.iter().all(|n| n.result));
}

#[test]
fn migratory_data_through_locks() {
    // A value bounces between nodes under a lock (migratory pattern):
    // each holder increments it; the count must be exact.
    const ROUNDS: usize = 6;
    let out = run_program(spec(3), move |dsm| {
        let a = dsm.alloc::<u64>(4);
        for _ in 0..ROUNDS {
            dsm.acquire(11);
            let v = dsm.read(&a, 0);
            dsm.write(&a, 0, v + 1);
            dsm.release(11);
        }
        dsm.barrier();
        dsm.read(&a, 0)
    });
    assert!(out.nodes.iter().all(|n| n.result == (3 * ROUNDS) as u64));
}

#[test]
fn producer_consumer_chains_through_locks() {
    // Node 0 produces under lock A; node 1 consumes under A and
    // produces under B; node 2 consumes under B — the notice chains
    // must carry visibility transitively.
    let out = run_program(spec(3), |dsm| {
        let a = dsm.alloc::<u64>(4);
        let b = dsm.alloc::<u64>(4);
        match dsm.me() {
            0 => {
                dsm.acquire(1);
                dsm.write(&a, 0, 77);
                dsm.release(1);
                dsm.barrier(); // A written
                dsm.barrier(); // B written
                0
            }
            1 => {
                dsm.barrier();
                dsm.acquire(1);
                let v = dsm.read(&a, 0);
                dsm.release(1);
                dsm.acquire(2);
                dsm.write(&b, 0, v + 1);
                dsm.release(2);
                dsm.barrier();
                v
            }
            _ => {
                dsm.barrier();
                dsm.barrier();
                dsm.acquire(2);
                let v = dsm.read(&b, 0);
                dsm.release(2);
                v
            }
        }
    });
    assert_eq!(out.nodes[1].result, 77);
    assert_eq!(out.nodes[2].result, 78);
}

#[test]
fn slice_ops_match_scalar_ops() {
    let out = run_program(spec(2), |dsm| {
        let a = dsm.alloc_blocked::<f64>(96);
        if dsm.me() == 0 {
            let vals: Vec<f64> = (0..96).map(|i| (i as f64).sqrt()).collect();
            dsm.write_slice(&a, 0, &vals);
        }
        dsm.barrier();
        let mut buf = vec![0.0; 96];
        dsm.read_slice(&a, 0, &mut buf);
        let scalar: Vec<f64> = (0..96).map(|i| dsm.read(&a, i)).collect();
        buf == scalar && buf[4] == 2.0
    });
    assert!(out.nodes.iter().all(|n| n.result));
}

#[test]
fn virtual_time_orders_with_protocol_cost() {
    // A run with more nodes on the same problem spends more time in
    // communication but finishes the sharing pattern correctly; the
    // exec time must be nonzero and fetches recorded.
    let out = run_program(spec(4), |dsm| {
        let a = dsm.alloc_blocked::<u64>(64);
        for r in 0..3u64 {
            if dsm.me() == (r as usize) % 4 {
                for i in 0..64 {
                    dsm.write(&a, i, r + i as u64);
                }
            }
            dsm.barrier();
            let _ = dsm.read(&a, 63);
            dsm.barrier();
        }
    });
    assert!(out.exec_time().as_nanos() > 0);
    let total = out.total_stats();
    assert!(total.page_fetches > 0);
    assert!(total.diffs_created > 0, "remote writers must produce diffs");
    assert_eq!(total.log_bytes, 0, "no logging configured");
}

#[test]
fn stats_fault_accounting_consistent() {
    let out = run_program(spec(2).with_protocol(Protocol::Ccl), |dsm| {
        let a = dsm.alloc_blocked::<u64>(64);
        if dsm.me() == 1 {
            dsm.write(&a, 0, 9); // page homed at node 0: write miss
        }
        dsm.barrier();
        let _ = dsm.read(&a, 0);
        dsm.barrier();
    });
    let w = &out.nodes[1].stats;
    assert!(w.write_faults >= 1);
    assert!(w.page_fetches >= 1);
    assert!(w.twins_created >= 1);
    assert!(w.diff_bytes > 0);
}
