//! Crash-recovery integration: a node fails mid-run, recovers from its
//! stable log, and the whole computation must still produce the exact
//! failure-free result — the correctness gate of DESIGN.md.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, CrashPlan, Protocol, SimDuration, TraceKind};

fn spec(app: App, nodes: usize, protocol: Protocol) -> ClusterSpec {
    let page = 256;
    ClusterSpec::new(nodes, app.tiny_pages(page) + 4)
        .with_page_size(page)
        .with_protocol(protocol)
}

fn check_recovery(app: App, protocol: Protocol, crash_node: usize, after_barriers: u64) {
    let expect = app.tiny_reference();
    let s = spec(app, 4, protocol).with_crash(CrashPlan::new(crash_node, after_barriers));
    let out = run_program(s, move |dsm| app.run_tiny(dsm));
    for n in &out.nodes {
        assert_eq!(
            n.result,
            expect,
            "{} with {:?}, crash of node {crash_node} after barrier {after_barriers}: \
             node {} digest mismatch",
            app.name(),
            protocol,
            n.node
        );
    }
    let failed = &out.nodes[crash_node];
    assert!(failed.crashed_at.is_some(), "crash was not injected");
    assert!(
        failed.recovery_exit.is_some(),
        "recovery never completed at the failed node"
    );
    assert!(
        out.recovery_time().unwrap() > SimDuration::ZERO,
        "recovery time must be positive"
    );
}

#[test]
fn ccl_recovers_fft3d() {
    check_recovery(App::Fft3d, Protocol::Ccl, 1, 3);
}

#[test]
fn ccl_recovers_mg() {
    check_recovery(App::Mg, Protocol::Ccl, 1, 4);
}

#[test]
fn ccl_recovers_shallow() {
    check_recovery(App::Shallow, Protocol::Ccl, 1, 4);
}

#[test]
fn ccl_recovers_water() {
    check_recovery(App::Water, Protocol::Ccl, 1, 3);
}

#[test]
fn ml_recovers_all_apps() {
    for app in App::ALL {
        check_recovery(app, Protocol::Ml, 1, 3);
    }
}

#[test]
fn recovery_works_for_every_failed_node() {
    // Fail each non-manager node in turn (single-failure model; the
    // paper's experiments also crash one worker).
    for node in 1..4 {
        check_recovery(App::Shallow, Protocol::Ccl, node, 3);
    }
}

#[test]
fn recovery_works_at_different_crash_points() {
    for after in [1, 2, 5, 8] {
        check_recovery(App::Mg, Protocol::Ccl, 2, after);
    }
}

#[test]
fn late_crash_close_to_program_end() {
    // Crash near the end: almost the entire run replays from the log.
    check_recovery(App::Water, Protocol::Ccl, 1, 8);
    check_recovery(App::Water, Protocol::Ml, 1, 8);
}

#[test]
fn ccl_recovery_reads_less_log_than_ml_recovery() {
    // The mechanism behind the paper's Figure 5: ML-recovery reads its
    // (large) log back record by record, CCL-recovery reads its (small)
    // log once per interval. The wall-clock win shows at paper scale
    // (see `cargo bench --bench fig5`); at test scale we assert the
    // scale-independent invariants: both recoveries succeed and CCL's
    // replay pulls far fewer bytes off stable storage.
    let app = App::Shallow;
    let crash = CrashPlan::new(1, 5);
    let ccl = run_program(spec(app, 4, Protocol::Ccl).with_crash(crash), move |dsm| {
        app.run_tiny(dsm)
    });
    let ml = run_program(spec(app, 4, Protocol::Ml).with_crash(crash), move |dsm| {
        app.run_tiny(dsm)
    });
    assert!(ccl.recovery_time().is_some() && ml.recovery_time().is_some());
    let ccl_read = ccl.nodes[1].disk.bytes_read;
    let ml_read = ml.nodes[1].disk.bytes_read;
    assert!(
        ccl_read * 2 < ml_read,
        "CCL replay read {ccl_read} bytes, ML replay read {ml_read}"
    );
    // And recovery is far cheaper than redoing the lost work live:
    // the replayed prefix costs less than the full failure-free run.
    assert!(ccl.recovery_time().unwrap().as_secs_f64() < ccl.exec_time().as_secs_f64());
}

#[test]
fn detection_delay_is_charged() {
    let app = App::Mg;
    let mut plan = CrashPlan::new(1, 3);
    plan.detection_delay = SimDuration::from_millis(500);
    let out = run_program(spec(app, 4, Protocol::Ccl).with_crash(plan), move |dsm| {
        app.run_tiny(dsm)
    });
    let failed = &out.nodes[1];
    let gap = failed
        .recovery_exit
        .unwrap()
        .saturating_since(failed.crashed_at.unwrap());
    assert!(gap >= SimDuration::from_millis(500));
    assert!(out.nodes.iter().all(|n| n.result == app.tiny_reference()));
}

#[test]
fn detection_delay_lands_in_the_wait_phase() {
    // The crash-detection timeout is blocked time, not compute or disk:
    // against the same crash with instant detection, the failed node's
    // wait-phase bucket must grow by at least the configured delay.
    // (Shallow is cycle-deterministic, so the two runs are comparable.)
    let app = App::Shallow;
    let delay = SimDuration::from_millis(200);
    let run = |plan: CrashPlan| {
        run_program(spec(app, 4, Protocol::Ccl).with_crash(plan), move |dsm| {
            app.run_tiny(dsm)
        })
    };
    let instant = run(CrashPlan::new(1, 3));
    let delayed = run(CrashPlan::new(1, 3).with_detection_delay(delay));
    assert!(delayed
        .nodes
        .iter()
        .all(|n| n.result == app.tiny_reference()));
    let base_wait = instant.nodes[1].phases.wait;
    let slow_wait = delayed.nodes[1].phases.wait;
    assert!(
        slow_wait >= base_wait + delay,
        "wait phase grew {:?} -> {:?}, expected at least +{delay:?}",
        base_wait,
        slow_wait
    );
}

#[test]
fn recovery_steps_are_traced_between_crash_and_exit() {
    // The telemetry contract of a crash run: the failed node's trace
    // carries the whole recovery arc — begin, per-episode replay steps,
    // end — inside the [crashed_at, recovery_exit] window.
    let app = App::Shallow;
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let s = spec(app, 4, protocol).with_crash(CrashPlan::new(1, 4));
        let out = run_program(s, move |dsm| app.run_tiny(dsm));
        let failed = &out.nodes[1];
        let crashed = failed.crashed_at.expect("crash was not injected");
        let exit = failed.recovery_exit.expect("recovery never completed");
        let window: Vec<_> = failed
            .trace
            .iter()
            .filter(|ev| ev.at >= crashed && ev.at <= exit)
            .collect();
        let begins = window
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::RecoveryBegin))
            .count();
        let replays = window
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::RecoveryReplay { .. }))
            .count();
        let ends = window
            .iter()
            .filter(|ev| matches!(ev.kind, TraceKind::RecoveryEnd))
            .count();
        assert_eq!(begins, 1, "{protocol:?}: RecoveryBegin missing from window");
        assert!(replays > 0, "{protocol:?}: no replay steps traced");
        assert_eq!(ends, 1, "{protocol:?}: RecoveryEnd missing from window");
    }
}
