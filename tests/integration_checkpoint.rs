//! Checkpointing integration: coordinated checkpoints shorten recovery
//! (log truncation + base promotion) and restore application state.

use ccl_core::{run_program, ClusterSpec, CrashPlan, Dsm, Protocol};

fn spec(protocol: Protocol) -> ClusterSpec {
    ClusterSpec::new(3, 24)
        .with_page_size(256)
        .with_protocol(protocol)
}

/// An iterative program that checkpoints halfway: each round every node
/// increments its own stripe; the app state blob records the round.
fn checkpointed_program(dsm: &mut Dsm) -> u64 {
    const ROUNDS: u64 = 6;
    const CKPT_AT: u64 = 3;
    let a = dsm.alloc_blocked::<u64>(48);
    let me = dsm.me();
    let stripe = 16;
    // Fast-forward: a post-crash restart resumes from the checkpoint.
    let start = match dsm.restored_state() {
        Some(blob) => u64::from_le_bytes(blob.try_into().expect("8-byte blob")),
        None => 0,
    };
    for round in start..ROUNDS {
        for i in 0..stripe {
            let idx = me * stripe + i;
            let v = dsm.read(&a, idx);
            dsm.write(&a, idx, v + round + 1);
        }
        dsm.barrier();
        // Checkpoint between barriers: coordinated (same round on every
        // node), no locks held, and the restart path re-executes from
        // exactly this point, so no extra barrier is needed.
        if round + 1 == CKPT_AT {
            dsm.checkpoint(&(round + 1).to_le_bytes());
        }
    }
    (0..48).map(|i| dsm.read(&a, i)).sum()
}

fn expected_sum() -> u64 {
    // each element accumulates 1+2+...+6 = 21; 48 elements
    48 * 21
}

#[test]
fn checkpoint_is_transparent_without_crash() {
    for p in [Protocol::Ml, Protocol::Ccl] {
        let out = run_program(spec(p), checkpointed_program);
        assert!(
            out.nodes.iter().all(|n| n.result == expected_sum()),
            "{p:?}"
        );
    }
}

#[test]
fn recovery_from_checkpoint_restores_app_state_ccl() {
    // Crash after the checkpoint: the restart must fast-forward via the
    // restored blob and replay only the post-checkpoint log.
    let s = spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 6));
    let out = run_program(s, checkpointed_program);
    assert!(
        out.nodes.iter().all(|n| n.result == expected_sum()),
        "results: {:?}",
        out.nodes.iter().map(|n| n.result).collect::<Vec<_>>()
    );
    assert!(out.recovery_time().is_some());
}

#[test]
fn recovery_from_checkpoint_restores_app_state_ml() {
    let s = spec(Protocol::Ml).with_crash(CrashPlan::new(1, 6));
    let out = run_program(s, checkpointed_program);
    assert!(out.nodes.iter().all(|n| n.result == expected_sum()));
}

#[test]
fn checkpoint_truncates_log_and_shortens_replay() {
    // Same crash point, with and without a checkpoint: the checkpointed
    // run must replay less (smaller recovery time) because the log was
    // truncated at the checkpoint.
    fn program(ckpt: bool) -> impl Fn(&mut Dsm) -> u64 + Send + Sync {
        move |dsm: &mut Dsm| {
            const ROUNDS: u64 = 24;
            let a = dsm.alloc_blocked::<u64>(48);
            let me = dsm.me();
            let start = match dsm.restored_state() {
                Some(blob) => u64::from_le_bytes(blob.try_into().unwrap()),
                None => 0,
            };
            for round in start..ROUNDS {
                for i in 0..16 {
                    let idx = me * 16 + i;
                    let v = dsm.read(&a, idx);
                    dsm.write(&a, idx, v + 1);
                }
                // cross-stripe read to force coherence traffic
                let _ = dsm.read(&a, ((me + 1) % 3) * 16);
                dsm.barrier();
                if ckpt && round + 1 == 12 {
                    dsm.checkpoint(&(round + 1).to_le_bytes());
                }
            }
            (0..48).map(|i| dsm.read(&a, i)).sum()
        }
    }
    // Crash late in both runs (same logical round). The workload is
    // sized so the per-interval replay savings dominate the fixed cost
    // of reading the checkpoint metadata back.
    let with = run_program(
        spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 23)),
        program(true),
    );
    let without = run_program(
        spec(Protocol::Ccl).with_crash(CrashPlan::new(1, 23)),
        program(false),
    );
    assert!(with.nodes.iter().all(|n| n.result == 48 * 24));
    assert!(without.nodes.iter().all(|n| n.result == 48 * 24));
    // The mechanism: the checkpointed run's log was truncated, so its
    // replay reads far fewer bytes back from stable storage (wall-clock
    // wins show at realistic scale; at test scale fixed costs like the
    // checkpoint-metadata read dominate).
    let read_with = with.nodes[1].disk.bytes_read;
    let read_without = without.nodes[1].disk.bytes_read;
    assert!(
        read_with < read_without,
        "truncated-log replay read {read_with} bytes, full replay {read_without}"
    );
}

#[test]
fn multiple_checkpoints_keep_only_latest_meta() {
    let out = run_program(spec(Protocol::Ccl), |dsm| {
        let a = dsm.alloc_blocked::<u64>(48);
        for round in 0..3u64 {
            dsm.write(&a, dsm.me() * 16, round);
            dsm.barrier();
            dsm.checkpoint(&round.to_le_bytes());
        }
        dsm.read(&a, 0)
    });
    assert!(out.nodes.iter().all(|n| n.result == 2));
    // Three checkpoints happened; disk writes accumulated.
    assert!(out.nodes[0].disk.writes >= 3);
}
