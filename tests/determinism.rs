//! Golden determinism contract: fault-free runs are bit-reproducible.
//!
//! The simulator is deterministic by construction, which is what makes
//! every reported number (Table 1/2, the figures) reviewable. These
//! goldens pin the *observable* outputs of two tiny fault-free runs —
//! application digest, virtual execution time, total log bytes, and the
//! trace event *order* — so any change to the hot path (diff kernel,
//! buffer pooling, shared payloads, codec sizing) that accidentally
//! alters protocol behavior fails loudly instead of silently shifting
//! the paper's tables.
//!
//! The digests were captured before the zero-copy overhaul and have
//! survived every optimization since unchanged — physical changes
//! (allocation, copies) and latency-hiding changes (batched prefetch,
//! adaptive homes) alike must never be logical ones. The execution
//! times, log bytes, and trace fingerprints were recaptured when the
//! fetch-hiding machinery landed (DESIGN.md §15): prefetch-enabled
//! defaults shorten the schedules (tiny 3D-FFT/None by 46 %), and the
//! barrier envelopes grew two length fields for migration proposals,
//! which nudges even the ML rows (whose default prefetch depth is 0)
//! by a few microseconds and log bytes.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

/// FNV-1a over every node's trace event-kind debug representation, in
/// node order. Virtual times are excluded on purpose: the fingerprint
/// pins the *order* of protocol events, which together with `exec_ns`
/// (which does depend on times) pins the full observable schedule.
///
/// The `MsgSend`/`MsgRecv` causal edges are **included**: the
/// conservative virtual-time scheduler (DESIGN.md §12) delivers
/// messages in `(arrival, src, seq)` order, so the full causal
/// schedule — not just the coherence-event order — is deterministic
/// and pinned here.
fn trace_fingerprint(out: &RunOutput<u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for n in &out.nodes {
        for ev in &n.trace {
            let tag = format!("{:?}", ev.kind);
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

struct Golden {
    app: App,
    protocol: Protocol,
    digest: u64,
    exec_ns: u64,
    log_bytes: u64,
    trace_fp: u64,
}

const PAGE: usize = 256;
const NODES: usize = 4;

fn goldens() -> Vec<Golden> {
    use Protocol::*;
    let g = |app, protocol, digest, exec_ns, log_bytes, trace_fp| Golden {
        app,
        protocol,
        digest,
        exec_ns,
        log_bytes,
        trace_fp,
    };
    vec![
        g(
            App::Fft3d,
            None,
            0x360c9ba06b0461e6,
            17_399_160,
            0,
            0x8e4705d6b31e2992,
        ),
        g(
            App::Fft3d,
            Ml,
            0x360c9ba06b0461e6,
            32_997_222,
            99_204,
            0xf860bf1b0726542d,
        ),
        g(
            App::Fft3d,
            Ccl,
            0x360c9ba06b0461e6,
            17_545_518,
            9_684,
            0x8bbe24cfc3946d70,
        ),
        g(
            App::Shallow,
            None,
            0xe13d122136fea4e6,
            18_311_904,
            0,
            0xd8ed8ecc063ac97,
        ),
        g(
            App::Shallow,
            Ml,
            0xe13d122136fea4e6,
            25_178_772,
            70_200,
            0x6dccf40693ee3924,
        ),
        g(
            App::Shallow,
            Ccl,
            0xe13d122136fea4e6,
            18_524_376,
            15_120,
            0x77fd4bfc8cc0693b,
        ),
    ]
}

/// Paper-scale goldens for the two applications the tolerance bands
/// used to cover: lock-heavy Water (previously ~20% `exec_ns` swing
/// from physical lock-arrival order) and MG (±0.01% ack-timing nudge
/// from physical flush arrival). Under the conservative virtual-time
/// scheduler both pin exactly, trace fingerprint included.
fn paper_goldens() -> Vec<Golden> {
    use Protocol::*;
    let g = |app, protocol, digest, exec_ns, log_bytes, trace_fp| Golden {
        app,
        protocol,
        digest,
        exec_ns,
        log_bytes,
        trace_fp,
    };
    vec![
        g(
            App::Mg,
            None,
            0x75aeac31809fd6dd,
            388_979_056,
            0,
            0xf1323143988acee0,
        ),
        g(
            App::Mg,
            Ml,
            0x75aeac31809fd6dd,
            469_310_162,
            8_261_316,
            0x26ce23fa74f67b0e,
        ),
        g(
            App::Mg,
            Ccl,
            0x75aeac31809fd6dd,
            403_537_858,
            609_784,
            0x699e1c4c7a4a5f6e,
        ),
        g(
            App::Water,
            None,
            0xb0c39b2ef95f7bdb,
            1_620_203_708,
            0,
            0xa490717ebc280ba3,
        ),
        g(
            App::Water,
            Ml,
            0xb0c39b2ef95f7bdb,
            1_633_819_956,
            1_991_903,
            0x114a5a4bbf0eefa4,
        ),
        g(
            App::Water,
            Ccl,
            0xb0c39b2ef95f7bdb,
            1_623_019_412,
            412_872,
            0x61bfeb9cc2b08213,
        ),
    ]
}

fn check_golden(gold: &Golden, out: &RunOutput<u64>) {
    let label = format!("{:?}/{:?}", gold.app, gold.protocol);
    assert_eq!(
        out.nodes[0].result, gold.digest,
        "{label}: application digest drifted"
    );
    assert_eq!(
        out.exec_time().as_nanos(),
        gold.exec_ns,
        "{label}: virtual execution time drifted"
    );
    assert_eq!(
        out.total_log_bytes(),
        gold.log_bytes,
        "{label}: total log bytes drifted (Table 2 would change)"
    );
    assert_eq!(
        trace_fingerprint(out),
        gold.trace_fp,
        "{label}: trace event order drifted"
    );
}

#[test]
fn fault_free_runs_match_goldens() {
    for gold in goldens() {
        let app = gold.app;
        let spec = ClusterSpec::new(NODES, app.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(gold.protocol);
        let out = run_program(spec, move |dsm| app.run_tiny(dsm));
        check_golden(&gold, &out);
    }
}

/// The paper-scale (8-node, 4 KiB pages) runs of Water and MG match
/// their goldens exactly — the workloads the ROADMAP's open item said
/// could never be pinned.
#[test]
fn paper_scale_water_and_mg_match_goldens() {
    for gold in paper_goldens() {
        let app = gold.app;
        let spec = ClusterSpec::new(8, app.paper_pages(4096) + 8).with_protocol(gold.protocol);
        let out = run_program(spec, move |dsm| app.run_paper(dsm));
        check_golden(&gold, &out);
    }
}

/// Same spec twice → byte-identical observables (run-to-run
/// determinism, independent of the golden capture).
#[test]
fn repeated_runs_are_identical() {
    let run = || {
        let spec = ClusterSpec::new(NODES, App::Fft3d.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(Protocol::Ccl);
        run_program(spec, |dsm| App::Fft3d.run_tiny(dsm))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.nodes[0].result, b.nodes[0].result);
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.total_log_bytes(), b.total_log_bytes());
    assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
}
