//! Golden determinism contract: fault-free runs are bit-reproducible.
//!
//! The simulator is deterministic by construction, which is what makes
//! every reported number (Table 1/2, the figures) reviewable. These
//! goldens pin the *observable* outputs of two tiny fault-free runs —
//! application digest, virtual execution time, total log bytes, and the
//! trace event *order* — so any change to the hot path (diff kernel,
//! buffer pooling, shared payloads, codec sizing) that accidentally
//! alters protocol behavior fails loudly instead of silently shifting
//! the paper's tables.
//!
//! The digests, execution times, and log bytes were captured before
//! the zero-copy overhaul and must survive it unchanged: the
//! optimizations are physical (allocation, copies), never logical
//! (bytes on the wire, events in the trace). The trace fingerprints
//! were recaptured when the blame engine's cause-identity events
//! landed (manager-side `LockGranted`/`BarrierReleased`, `wait_ns`
//! fields, per-object `LogAppend`s) — a trace-only change, which is
//! why every *other* column above stayed bit-identical.

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

/// FNV-1a over every node's trace event-kind debug representation, in
/// node order. Virtual times are excluded on purpose: the fingerprint
/// pins the *order* of protocol events, which together with `exec_ns`
/// (which does depend on times) pins the full observable schedule.
///
/// The `MsgSend`/`MsgRecv` causal edges are **included**: the
/// conservative virtual-time scheduler (DESIGN.md §12) delivers
/// messages in `(arrival, src, seq)` order, so the full causal
/// schedule — not just the coherence-event order — is deterministic
/// and pinned here.
fn trace_fingerprint(out: &RunOutput<u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for n in &out.nodes {
        for ev in &n.trace {
            let tag = format!("{:?}", ev.kind);
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

struct Golden {
    app: App,
    protocol: Protocol,
    digest: u64,
    exec_ns: u64,
    log_bytes: u64,
    trace_fp: u64,
}

const PAGE: usize = 256;
const NODES: usize = 4;

fn goldens() -> Vec<Golden> {
    use Protocol::*;
    let g = |app, protocol, digest, exec_ns, log_bytes, trace_fp| Golden {
        app,
        protocol,
        digest,
        exec_ns,
        log_bytes,
        trace_fp,
    };
    vec![
        g(
            App::Fft3d,
            None,
            0x360c9ba06b0461e6,
            32_247_432,
            0,
            0x9659fe0f7292b4dd,
        ),
        g(
            App::Fft3d,
            Ml,
            0x360c9ba06b0461e6,
            32_990_382,
            99_060,
            0x6b8e0b90cf7b83b7,
        ),
        g(
            App::Fft3d,
            Ccl,
            0x360c9ba06b0461e6,
            32_393_790,
            9_684,
            0x1192c0dee2b40c49,
        ),
        g(
            App::Shallow,
            None,
            0xe13d122136fea4e6,
            24_644_592,
            0,
            0xbded56003952faca,
        ),
        g(
            App::Shallow,
            Ml,
            0xe13d122136fea4e6,
            25_169_652,
            70_008,
            0xe20a75c1f3af22ee,
        ),
        g(
            App::Shallow,
            Ccl,
            0xe13d122136fea4e6,
            24_801_768,
            15_120,
            0xe96cafb0c67d12ae,
        ),
    ]
}

/// Paper-scale goldens for the two applications the tolerance bands
/// used to cover: lock-heavy Water (previously ~20% `exec_ns` swing
/// from physical lock-arrival order) and MG (±0.01% ack-timing nudge
/// from physical flush arrival). Under the conservative virtual-time
/// scheduler both pin exactly, trace fingerprint included.
fn paper_goldens() -> Vec<Golden> {
    use Protocol::*;
    let g = |app, protocol, digest, exec_ns, log_bytes, trace_fp| Golden {
        app,
        protocol,
        digest,
        exec_ns,
        log_bytes,
        trace_fp,
    };
    vec![
        g(
            App::Mg,
            None,
            0x75aeac31809fd6dd,
            416_847_992,
            0,
            0x741b737f2ebe2477,
        ),
        g(
            App::Mg,
            Ml,
            0x75aeac31809fd6dd,
            469_295_722,
            8_260_196,
            0x270e0deea699b555,
        ),
        g(
            App::Mg,
            Ccl,
            0x75aeac31809fd6dd,
            426_208_970,
            609_784,
            0x45a7ad66baebf2d3,
        ),
        g(
            App::Water,
            None,
            0xb0c39b2ef95f7bdb,
            1_620_170_440,
            0,
            0x9cce7fbadeb70e99,
        ),
        g(
            App::Water,
            Ml,
            0xb0c39b2ef95f7bdb,
            1_633_811_756,
            1_991_423,
            0xb5604d71572a0f35,
        ),
        g(
            App::Water,
            Ccl,
            0xb0c39b2ef95f7bdb,
            1_622_985_572,
            412_872,
            0x4050e8fea5e51610,
        ),
    ]
}

fn check_golden(gold: &Golden, out: &RunOutput<u64>) {
    let label = format!("{:?}/{:?}", gold.app, gold.protocol);
    assert_eq!(
        out.nodes[0].result, gold.digest,
        "{label}: application digest drifted"
    );
    assert_eq!(
        out.exec_time().as_nanos(),
        gold.exec_ns,
        "{label}: virtual execution time drifted"
    );
    assert_eq!(
        out.total_log_bytes(),
        gold.log_bytes,
        "{label}: total log bytes drifted (Table 2 would change)"
    );
    assert_eq!(
        trace_fingerprint(out),
        gold.trace_fp,
        "{label}: trace event order drifted"
    );
}

#[test]
fn fault_free_runs_match_goldens() {
    for gold in goldens() {
        let app = gold.app;
        let spec = ClusterSpec::new(NODES, app.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(gold.protocol);
        let out = run_program(spec, move |dsm| app.run_tiny(dsm));
        check_golden(&gold, &out);
    }
}

/// The paper-scale (8-node, 4 KiB pages) runs of Water and MG match
/// their goldens exactly — the workloads the ROADMAP's open item said
/// could never be pinned.
#[test]
fn paper_scale_water_and_mg_match_goldens() {
    for gold in paper_goldens() {
        let app = gold.app;
        let spec = ClusterSpec::new(8, app.paper_pages(4096) + 8).with_protocol(gold.protocol);
        let out = run_program(spec, move |dsm| app.run_paper(dsm));
        check_golden(&gold, &out);
    }
}

/// Same spec twice → byte-identical observables (run-to-run
/// determinism, independent of the golden capture).
#[test]
fn repeated_runs_are_identical() {
    let run = || {
        let spec = ClusterSpec::new(NODES, App::Fft3d.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(Protocol::Ccl);
        run_program(spec, |dsm| App::Fft3d.run_tiny(dsm))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.nodes[0].result, b.nodes[0].result);
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.total_log_bytes(), b.total_log_bytes());
    assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
}
