//! Golden determinism contract: fault-free runs are bit-reproducible.
//!
//! The simulator is deterministic by construction, which is what makes
//! every reported number (Table 1/2, the figures) reviewable. These
//! goldens pin the *observable* outputs of two tiny fault-free runs —
//! application digest, virtual execution time, total log bytes, and the
//! trace event *order* — so any change to the hot path (diff kernel,
//! buffer pooling, shared payloads, codec sizing) that accidentally
//! alters protocol behavior fails loudly instead of silently shifting
//! the paper's tables.
//!
//! The values were captured before the zero-copy overhaul and must
//! survive it unchanged: the optimizations are physical (allocation,
//! copies), never logical (bytes on the wire, events in the trace).

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput, TraceKind};

/// FNV-1a over every node's trace event-kind debug representation, in
/// node order. Virtual times are excluded on purpose: the fingerprint
/// pins the *order* of protocol events, which together with `exec_ns`
/// (which does depend on times) pins the full observable schedule.
///
/// The `MsgSend`/`MsgRecv` causal-edge events are excluded too: they
/// record *physical* inbox interleaving across concurrent senders,
/// which real thread scheduling is free to permute without changing any
/// virtual-time observable. The coherence-event order this fingerprint
/// pins is exactly what stayed deterministic before those events
/// existed.
fn trace_fingerprint(out: &RunOutput<u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for n in &out.nodes {
        for ev in &n.trace {
            if matches!(
                ev.kind,
                TraceKind::MsgSend { .. } | TraceKind::MsgRecv { .. }
            ) {
                continue;
            }
            let tag = format!("{:?}", ev.kind);
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

struct Golden {
    app: App,
    protocol: Protocol,
    digest: u64,
    exec_ns: u64,
    log_bytes: u64,
    trace_fp: u64,
}

const PAGE: usize = 256;
const NODES: usize = 4;

fn goldens() -> Vec<Golden> {
    use Protocol::*;
    let g = |app, protocol, digest, exec_ns, log_bytes, trace_fp| Golden {
        app,
        protocol,
        digest,
        exec_ns,
        log_bytes,
        trace_fp,
    };
    vec![
        g(
            App::Fft3d,
            None,
            0x360c9ba06b0461e6,
            32_247_432,
            0,
            0x55fd937cf68e588b,
        ),
        g(
            App::Fft3d,
            Ml,
            0x360c9ba06b0461e6,
            32_946_642,
            93_228,
            0x80937393dad0f35f,
        ),
        g(
            App::Fft3d,
            Ccl,
            0x360c9ba06b0461e6,
            32_388_930,
            9_036,
            0x36023317e53600e7,
        ),
        g(
            App::Shallow,
            None,
            0xe13d122136fea4e6,
            24_644_592,
            0,
            0xb1b4a32016026bd3,
        ),
        g(
            App::Shallow,
            Ml,
            0xe13d122136fea4e6,
            25_140_492,
            66_120,
            0x1fb4528841a8d73,
        ),
        g(
            App::Shallow,
            Ccl,
            0xe13d122136fea4e6,
            24_795_288,
            14_256,
            0xd790fc25771a1297,
        ),
    ]
}

#[test]
fn fault_free_runs_match_goldens() {
    for gold in goldens() {
        let app = gold.app;
        let spec = ClusterSpec::new(NODES, app.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(gold.protocol);
        let out = run_program(spec, move |dsm| app.run_tiny(dsm));
        let label = format!("{:?}/{:?}", gold.app, gold.protocol);
        assert_eq!(
            out.nodes[0].result, gold.digest,
            "{label}: application digest drifted"
        );
        assert_eq!(
            out.exec_time().as_nanos(),
            gold.exec_ns,
            "{label}: virtual execution time drifted"
        );
        assert_eq!(
            out.total_log_bytes(),
            gold.log_bytes,
            "{label}: total log bytes drifted (Table 2 would change)"
        );
        assert_eq!(
            trace_fingerprint(&out),
            gold.trace_fp,
            "{label}: trace event order drifted"
        );
    }
}

/// Same spec twice → byte-identical observables (run-to-run
/// determinism, independent of the golden capture).
#[test]
fn repeated_runs_are_identical() {
    let run = || {
        let spec = ClusterSpec::new(NODES, App::Fft3d.tiny_pages(PAGE) + 4)
            .with_page_size(PAGE)
            .with_protocol(Protocol::Ccl);
        run_program(spec, |dsm| App::Fft3d.run_tiny(dsm))
    };
    let (a, b) = (run(), run());
    assert_eq!(a.nodes[0].result, b.nodes[0].result);
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.total_log_bytes(), b.total_log_bytes());
    assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
}
