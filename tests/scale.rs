//! 64- and 128-node scale smoke tests for the conservative
//! virtual-time scheduler.
//!
//! The watermark scheme's delivery condition quantifies over every
//! live peer, so its failure mode is a cycle of nodes each waiting for
//! another's watermark to advance — a risk that grows with cluster
//! size and synchronization density, not workload size. These tests run
//! a lock- and barrier-heavy program on clusters eight and sixteen
//! times the paper's 8-node configuration to show the scheme stays
//! live well past the scale every other test exercises. (The router's
//! 60s watchdog turns a genuine scheduler deadlock into a panic with a
//! full floor/heap dump, so a regression fails loudly here instead of
//! hanging CI.)
//!
//! The 128-node tier became affordable with the sharded scheduler:
//! under the original single-mutex fabric the same workload took ~7.6 s
//! *per run* in release (and far longer in debug), so the smoke stopped
//! at 64. `scripts/verify.sh` additionally runs both tiers in release
//! under a wall-clock ceiling, catching gross scheduler perf
//! regressions alongside liveness.

use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

const ROUNDS: u64 = 4;
const LOCKS: u32 = 8;

/// Every node alternates contended lock work (all nodes hammer 8
/// locks, incrementing shared counters) with full-cluster barriers —
/// the pattern that maximizes simultaneous watermark waits.
fn run(nodes: usize, protocol: Protocol) -> RunOutput<u64> {
    let spec = ClusterSpec::new(nodes, 16)
        .with_page_size(256)
        .with_protocol(protocol);
    run_program(spec, |dsm| {
        let counters = dsm.alloc::<u64>(LOCKS as usize);
        for _ in 0..ROUNDS {
            let me = dsm.me() as u32;
            for k in 0..LOCKS {
                let lock = (me + k) % LOCKS;
                dsm.acquire(lock);
                let v = dsm.read(&counters, lock as usize);
                dsm.write(&counters, lock as usize, v + 1);
                dsm.release(lock);
            }
            dsm.barrier();
        }
        (0..LOCKS as usize).map(|k| dsm.read(&counters, k)).sum()
    })
}

fn assert_no_lost_increments(nodes: usize, protocol: Protocol) {
    // Every round, all nodes increment all 8 counters once each.
    let expect = nodes as u64 * ROUNDS * LOCKS as u64;
    let out = run(nodes, protocol);
    for n in &out.nodes {
        assert_eq!(
            n.result, expect,
            "{protocol:?}: node {} lost increments",
            n.node
        );
    }
}

#[test]
fn sixty_four_nodes_of_locks_and_barriers_stay_live() {
    for protocol in [Protocol::None, Protocol::Ccl] {
        assert_no_lost_increments(64, protocol);
    }
}

#[test]
fn one_hundred_twenty_eight_nodes_of_locks_and_barriers_stay_live() {
    assert_no_lost_increments(128, Protocol::Ccl);
}

/// Two same-spec runs at scale are bit-identical: determinism does not
/// degrade with cluster size.
fn assert_reproducible(nodes: usize) {
    let (a, b) = (run(nodes, Protocol::Ccl), run(nodes, Protocol::Ccl));
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.total_log_bytes(), b.total_log_bytes());
    let stats = |o: &RunOutput<u64>| {
        o.nodes
            .iter()
            .map(|n| (n.stats.msgs_sent, n.stats.msgs_recv, n.finish))
            .collect::<Vec<_>>()
    };
    assert_eq!(stats(&a), stats(&b));
}

#[test]
fn sixty_four_node_runs_are_reproducible() {
    assert_reproducible(64);
}

#[test]
fn one_hundred_twenty_eight_node_runs_are_reproducible() {
    assert_reproducible(128);
}
