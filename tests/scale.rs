//! 64-node scale smoke test for the conservative virtual-time
//! scheduler.
//!
//! The watermark scheme's delivery condition quantifies over every
//! live peer, so its failure mode is a cycle of nodes each waiting for
//! another's watermark to advance — a risk that grows with cluster
//! size and synchronization density, not workload size. This test runs
//! a lock- and barrier-heavy program on a cluster eight times the
//! paper's 8-node configuration to show the scheme stays live well
//! past the scale every other test exercises. (The router's 60s
//! watchdog turns a genuine scheduler deadlock into a panic with a
//! full floor/heap dump, so a regression fails loudly here instead of
//! hanging CI.)

use ccl_core::{run_program, ClusterSpec, Protocol, RunOutput};

const NODES: usize = 64;
const ROUNDS: u64 = 4;
const LOCKS: u32 = 8;

/// Every node alternates contended lock work (all 64 nodes hammer 8
/// locks, incrementing shared counters) with full-cluster barriers —
/// the pattern that maximizes simultaneous watermark waits.
fn run(protocol: Protocol) -> RunOutput<u64> {
    let spec = ClusterSpec::new(NODES, 16)
        .with_page_size(256)
        .with_protocol(protocol);
    run_program(spec, |dsm| {
        let counters = dsm.alloc::<u64>(LOCKS as usize);
        for _ in 0..ROUNDS {
            let me = dsm.me() as u32;
            for k in 0..LOCKS {
                let lock = (me + k) % LOCKS;
                dsm.acquire(lock);
                let v = dsm.read(&counters, lock as usize);
                dsm.write(&counters, lock as usize, v + 1);
                dsm.release(lock);
            }
            dsm.barrier();
        }
        (0..LOCKS as usize).map(|k| dsm.read(&counters, k)).sum()
    })
}

#[test]
fn sixty_four_nodes_of_locks_and_barriers_stay_live() {
    // Every round, all 64 nodes increment all 8 counters once each.
    let expect = NODES as u64 * ROUNDS * LOCKS as u64;
    for protocol in [Protocol::None, Protocol::Ccl] {
        let out = run(protocol);
        for n in &out.nodes {
            assert_eq!(
                n.result, expect,
                "{protocol:?}: node {} lost increments",
                n.node
            );
        }
    }
}

/// Two same-spec runs at 64 nodes are bit-identical: determinism does
/// not degrade with scale.
#[test]
fn sixty_four_node_runs_are_reproducible() {
    let (a, b) = (run(Protocol::Ccl), run(Protocol::Ccl));
    assert_eq!(a.exec_time(), b.exec_time());
    assert_eq!(a.total_log_bytes(), b.total_log_bytes());
    let stats = |o: &RunOutput<u64>| {
        o.nodes
            .iter()
            .map(|n| (n.stats.msgs_sent, n.stats.msgs_recv, n.finish))
            .collect::<Vec<_>>()
    };
    assert_eq!(stats(&a), stats(&b));
}
