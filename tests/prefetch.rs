//! Fetch-hiding transparency: the batched-fetch / prefetch / adaptive
//! home-migration machinery (DESIGN.md §15) is a pure latency
//! optimization and must never change what the application computes.
//!
//! Every property here runs the same workload twice — once with the
//! machinery enabled (the defaults) and once ablated back to the
//! classic one-page-per-round-trip protocol (`with_prefetch_depth(0)`
//! plus `with_adaptive_migration(false)`) — and demands bit-identical
//! application digests: fault-free, under random barrier-synchronized
//! write schedules, and across injected crash recovery on a lossy
//! network. Schedules are drawn from `minicheck` streams, so failures
//! report a reproducing seed.

use std::cell::Cell;

use ccl_apps::App;
use ccl_core::{run_program, ClusterSpec, CrashPlan, Dsm, FaultPlan, Protocol};
use minicheck::{check, Rng};

const NODES: usize = 4;
const PAGE: usize = 256;
const CASES: u64 = 8;

fn tiny_spec(app: App, protocol: Protocol) -> ClusterSpec {
    ClusterSpec::new(NODES, app.tiny_pages(PAGE) + 4)
        .with_page_size(PAGE)
        .with_protocol(protocol)
}

/// Ablate a spec back to the pre-batching protocol: single-page
/// fetches, no prediction, homes fixed for the whole run.
fn ablated(spec: ClusterSpec) -> ClusterSpec {
    spec.with_prefetch_depth(0).with_adaptive_migration(false)
}

/// Run `app` under `spec` and return its digest, asserting every node
/// agrees on it.
fn digest_of(app: App, spec: ClusterSpec) -> (u64, u64) {
    let out = run_program(spec, move |dsm| app.run_tiny(dsm));
    let digest = out.nodes[0].result;
    for n in &out.nodes {
        assert_eq!(n.result, digest, "{}: nodes disagree", app.name());
    }
    (digest, out.total_stats().prefetch_issued)
}

/// Fault-free matrix: for every application and Table 2 protocol the
/// enabled and ablated digests agree (and match the serial reference).
/// The enabled side must actually predict something somewhere, or the
/// property would be vacuous.
#[test]
fn fetch_hiding_is_digest_transparent_fault_free() {
    let mut issued_total = 0;
    for app in App::ALL {
        let reference = app.tiny_reference();
        for protocol in Protocol::TABLE2 {
            let (on, issued) = digest_of(app, tiny_spec(app, protocol));
            let (off, _) = digest_of(app, ablated(tiny_spec(app, protocol)));
            assert_eq!(
                on,
                reference,
                "{}/{protocol:?}: enabled digest drifted",
                app.name()
            );
            assert_eq!(
                off,
                reference,
                "{}/{protocol:?}: ablated digest drifted",
                app.name()
            );
            issued_total += issued;
        }
    }
    assert!(issued_total > 0, "no run issued a single prefetch");
}

/// Random DRF write schedules (one writer per cell per round): the
/// final shared state read back with prefetch enabled must match the
/// ablated run cell for cell.
#[test]
fn random_schedules_agree_with_ablated_runs() {
    const CELLS: usize = 96; // 3 x 256-byte pages, block-distributed

    type Round = Vec<(usize, usize, u64)>; // (cell, writer, value)

    fn arb_schedule(rng: &mut Rng) -> Vec<Round> {
        let rounds = rng.usize_in(1, 6);
        (0..rounds)
            .map(|_| {
                let mut round: Round = (0..rng.usize_in(0, 24))
                    .map(|_| {
                        (
                            rng.usize_in(0, CELLS),
                            rng.usize_in(0, NODES),
                            rng.u64_in(1, 1_000_000),
                        )
                    })
                    .collect();
                round.sort_by_key(|(c, _, _)| *c);
                round.dedup_by_key(|(c, _, _)| *c);
                round
            })
            .collect()
    }

    fn program(schedule: Vec<Round>) -> impl Fn(&mut Dsm) -> Vec<u64> + Send + Sync {
        move |dsm: &mut Dsm| {
            let a = dsm.alloc_blocked::<u64>(CELLS);
            let me = dsm.me();
            for round in &schedule {
                for &(cell, writer, value) in round {
                    if writer == me {
                        dsm.write(&a, cell, value);
                    }
                }
                dsm.barrier();
                let probe = (me * 31) % CELLS;
                let _ = dsm.read(&a, probe);
                dsm.barrier();
            }
            (0..CELLS).map(|c| dsm.read(&a, c)).collect()
        }
    }

    for protocol in [Protocol::None, Protocol::Ccl] {
        let name = format!("prefetch-schedules-{protocol:?}");
        check(&name, CASES, |rng| {
            let schedule = arb_schedule(rng);
            let spec = ClusterSpec::new(NODES, 8)
                .with_page_size(PAGE)
                .with_protocol(protocol);
            let on = run_program(spec.clone(), program(schedule.clone()));
            let off = run_program(ablated(spec), program(schedule));
            for (a, b) in on.nodes.iter().zip(&off.nodes) {
                assert_eq!(
                    a.result, b.result,
                    "{protocol:?}: node {} diverges from its ablated twin",
                    a.node
                );
            }
        });
    }
}

/// Chaos recovery: a random crash on a random lossy network, for both
/// recovery protocols. The recovered digest with the fetch-hiding
/// machinery on equals the ablated one (both equal the reference). At
/// least one drawn schedule must actually recover, or the property is
/// vacuous.
#[test]
fn chaos_recovery_agrees_with_ablated_runs() {
    let app = App::Fft3d;
    let reference = app.tiny_reference();
    for protocol in [Protocol::Ml, Protocol::Ccl] {
        let recovered = Cell::new(0u64);
        let name = format!("prefetch-chaos-{protocol:?}");
        check(&name, CASES, |rng| {
            let victim = rng.usize_in(1, NODES);
            let after = rng.u64_in(1, 5);
            let faults = FaultPlan::lossy(rng.next_u64(), rng.u32_in(5, 30) as u16, 10);
            // Depth forced on explicitly: ML's *default* resolves to 0
            // (speculative copies bloat its content log), but its
            // replay must still absorb trailing batches correctly when
            // a user opts in — this is the test that holds it to that.
            let build = || {
                tiny_spec(app, protocol)
                    .with_prefetch_depth(8)
                    .with_faults(faults.clone())
                    .with_crash(CrashPlan::new(victim, after))
            };
            let on = run_program(build(), move |dsm| app.run_tiny(dsm));
            let off = run_program(ablated(build()), move |dsm| app.run_tiny(dsm));
            for (a, b) in on.nodes.iter().zip(&off.nodes) {
                assert_eq!(a.result, reference, "{protocol:?}: enabled digest drifted");
                assert_eq!(b.result, reference, "{protocol:?}: ablated digest drifted");
            }
            if on.recovery_time().is_some() {
                recovered.set(recovered.get() + 1);
            }
        });
        assert!(
            recovered.get() > 0,
            "{protocol:?}: no schedule exercised recovery"
        );
    }
}
